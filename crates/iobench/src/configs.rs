//! The Figure 9 run matrix and full-scale world construction.

use clufs::Tuning;
use diskmodel::DiskParams;
use pagecache::PageCacheParams;
use simkit::Sim;
use ufs::{build_world, MkfsOptions, UfsParams, World};
use vfs::FsResult;

/// One row of Figure 9.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Config {
    /// SunOS 4.1.1 with 120 KB clusters, no rotdelay, free-behind, limits.
    A,
    /// SunOS 4.1 code (block-at-a-time, 4 ms rotdelay) plus free-behind
    /// and write limits.
    B,
    /// As B without free-behind.
    C,
    /// Stock SunOS 4.1: no free-behind, no write limit.
    D,
}

impl Config {
    /// All four rows in paper order.
    pub fn all() -> [Config; 4] {
        [Config::A, Config::B, Config::C, Config::D]
    }

    /// The tuning for this row.
    pub fn tuning(self) -> Tuning {
        match self {
            Config::A => Tuning::config_a(),
            Config::B => Tuning::config_b(),
            Config::C => Tuning::config_c(),
            Config::D => Tuning::config_d(),
        }
    }

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Config::A => "A",
            Config::B => "B",
            Config::C => "C",
            Config::D => "D",
        }
    }

    /// The Figure 9 descriptive columns:
    /// (cluster size, rotdelay, UFS version, free behind, write limit).
    pub fn figure9_row(self) -> (String, u32, &'static str, bool, bool) {
        let t = self.tuning();
        (
            format!("{}KB", t.cluster_bytes() / 1024),
            t.rotdelay_ms,
            if t.clustering {
                "SunOS 4.1.1"
            } else {
                "SunOS 4.1"
            },
            t.free_behind,
            t.write_limit.is_some(),
        )
    }
}

/// Scaling knobs for experiment worlds.
#[derive(Clone, Copy, Debug)]
pub struct WorldOptions {
    /// Use the full 400 MB drive and 8 MB memory (the measurement machine);
    /// `false` builds the small test world.
    pub full_scale: bool,
    /// Enable the Further Work `B_ORDER` ordered-metadata mode.
    pub ordered_metadata: bool,
    /// Enable the Further Work bmap extent-tuple cache.
    pub bmap_cache: bool,
    /// Enable the Further Work request-size ("random clustering") hint.
    pub random_cluster_hint: bool,
    /// Enable the Further Work UFS_HOLE bmap-skip optimization.
    pub ufs_hole_opt: bool,
}

impl Default for WorldOptions {
    fn default() -> Self {
        WorldOptions {
            full_scale: true,
            ordered_metadata: false,
            bmap_cache: false,
            random_cluster_hint: false,
            ufs_hole_opt: false,
        }
    }
}

/// Builds the paper's measurement machine with the given tuning: 20 MHz
/// SPARCstation CPU costs, 8 MB of memory, and the 400 MB SCSI drive with a
/// track buffer, pageout daemon and cleaner wired up.
pub async fn paper_world(sim: &Sim, tuning: Tuning, opts: WorldOptions) -> FsResult<World> {
    // Wall-clock phase (nested inside `run.drive` in the host profile):
    // world construction — mkfs, mount, cache build — is a real fraction
    // of short runs and should be visible separately from the drive loop.
    let _build = simkit::perfmon::phase("world.build");
    let mut tuning = tuning;
    tuning.bmap_cache = opts.bmap_cache;
    tuning.random_cluster_hint = opts.random_cluster_hint;
    tuning.ufs_hole_opt = opts.ufs_hole_opt;
    let mut params = if opts.full_scale {
        UfsParams::with_tuning(tuning)
    } else {
        UfsParams::test(tuning)
    };
    params.ordered_metadata = opts.ordered_metadata;
    if opts.full_scale {
        build_world(
            sim,
            DiskParams::sun0424(),
            PageCacheParams::sparcstation_8mb(),
            MkfsOptions::sun0424(),
            params,
        )
        .await
    } else {
        build_world(
            sim,
            DiskParams::small_test(),
            PageCacheParams::small_test(),
            MkfsOptions::small_test(),
            params,
        )
        .await
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_rows_match_paper() {
        let rows: Vec<_> = Config::all().iter().map(|c| c.figure9_row()).collect();
        assert_eq!(rows[0], ("120KB".to_string(), 0, "SunOS 4.1.1", true, true));
        assert_eq!(rows[1], ("8KB".to_string(), 4, "SunOS 4.1", true, true));
        assert_eq!(rows[2], ("8KB".to_string(), 4, "SunOS 4.1", false, true));
        assert_eq!(rows[3], ("8KB".to_string(), 4, "SunOS 4.1", false, false));
    }

    #[test]
    fn full_scale_world_builds() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let w = paper_world(&s, Config::A.tuning(), WorldOptions::default())
                .await
                .unwrap();
            // ~400 MB drive formatted: tens of thousands of data blocks.
            assert!(w.fs.capacity_blocks() > 40_000);
            assert_eq!(w.cache.total_pages(), 768);
        });
    }
}
