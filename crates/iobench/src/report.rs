//! Fixed-width table rendering for the regenerated figures.

/// A simple right-aligned table builder.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut out = String::new();
            for i in 0..ncol {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                if i == 0 {
                    // First column left-aligned.
                    out.push_str(&cells[i]);
                    out.push_str(&" ".repeat(pad));
                } else {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(&cells[i]);
                }
            }
            out
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a rate like Figure 10 (whole KB/s).
pub fn kbs(rate: f64) -> String {
    format!("{:.0}", rate)
}

/// Formats a ratio like Figure 11 (two decimals).
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "-".to_string()
    } else {
        format!("{:.2}", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["", "FSR", "FSU"]);
        t.row(vec!["A".into(), "1610".into(), "1364".into()]);
        t.row(vec!["B".into(), "805".into(), "799".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("1610"));
        assert!(lines[3].ends_with("799"));
        // Columns align: both data lines have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(1610.0, 805.0), "2.00");
        assert_eq!(ratio(1.0, 0.0), "-");
        assert_eq!(kbs(805.4), "805");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
