//! The `iobench volume` experiment: cluster size × stripe width × spindle
//! count on `volmgr` RAID arrays.
//!
//! The paper tunes clustering against one spindle; an array changes the
//! geometry underneath the cluster executor. A cluster that is a whole
//! number of stripe rows keeps every spindle streaming, one that straddles
//! a chunk boundary splits into scatter/gather child transfers, and on
//! RAID-5 a cluster smaller than a full row pays the read-modify-write
//! small-write penalty. The sweep measures all three effects, plus the
//! UFS-vs-extentfs ratio on an array (does extent-like allocation still
//! matter when the device itself stripes?).

use clufs::{Tuning, BLOCK_SIZE};
use diskmodel::DiskParams;
use pagecache::{PageCache, PageCacheParams, PageoutDaemon, PageoutParams};
use simkit::{Cpu, Sim};
use ufs::{build_world_on, MkfsOptions, UfsParams, World};
use vfs::Vnode;
use volmgr::VolumeSpec;

use crate::experiments::RunScale;
use crate::iobench::{run_iobench, BenchOptions, IoKind};
use crate::report::{kbs, ratio, Table};
use crate::runner::{RunPlan, Runner};

/// What the sweep covers. [`VolumeSweep::paper`] is the full matrix the
/// CLI runs; tests and `--volume <spec>` restrict it.
#[derive(Clone, Debug)]
pub struct VolumeSweep {
    /// Arrays for the stripe-alignment table (every spec × every cluster).
    pub specs: Vec<VolumeSpec>,
    /// UFS cluster sizes in KB (`maxcontig` = KB·1024 / block size).
    pub clusters_kb: Vec<u32>,
    /// Arrays that additionally get the UFS-vs-extentfs comparison.
    pub ext_specs: Vec<VolumeSpec>,
}

fn spec(s: &str) -> VolumeSpec {
    VolumeSpec::parse(s).expect("built-in spec")
}

impl VolumeSweep {
    /// The full sweep: stripe width × spindle count across all three RAID
    /// levels, three cluster sizes, and one extentfs comparison per level.
    pub fn paper() -> VolumeSweep {
        VolumeSweep {
            specs: vec![
                spec("raid0:2:64k"),
                spec("raid0:4:16k"),
                spec("raid0:4:64k"),
                spec("raid0:4:128k"),
                spec("raid0:8:64k"),
                spec("raid1:2"),
                spec("raid5:5:16k"),
                spec("raid5:5:64k"),
                spec("raid5:5:128k"),
            ],
            clusters_kb: vec![16, 56, 120],
            ext_specs: vec![spec("raid0:4:64k"), spec("raid1:2"), spec("raid5:5:64k")],
        }
    }

    /// Restricts the sweep to one array (the `--volume <spec>` flag): all
    /// cluster sizes, plus that array's extentfs comparison.
    pub fn only(spec: VolumeSpec) -> VolumeSweep {
        VolumeSweep {
            specs: vec![spec],
            clusters_kb: vec![16, 56, 120],
            ext_specs: vec![spec],
        }
    }
}

/// Builds a full-scale world mounted on the array `spec` describes (one
/// `sun0424` drive per spindle) with the given cluster size.
async fn volume_world(sim: &Sim, spec: &VolumeSpec, cluster_kb: u32) -> World {
    let tuning = Tuning {
        maxcontig: cluster_kb * 1024 / BLOCK_SIZE,
        ..Tuning::config_a()
    };
    let disk = volmgr::build(sim, spec, DiskParams::sun0424());
    build_world_on(
        sim,
        disk,
        PageCacheParams::sparcstation_8mb(),
        MkfsOptions::sun0424(),
        UfsParams::with_tuning(tuning),
    )
    .await
    .expect("volume world")
}

fn bench_opts(scale: RunScale) -> BenchOptions {
    BenchOptions {
        file_bytes: scale.file_bytes,
        io_bytes: 8192,
        random_ops: scale.random_ops,
        seed: 0x1991,
    }
}

/// One UFS-on-array cell, in KB/s.
fn ufs_cell(sim: &Sim, spec: &VolumeSpec, cluster_kb: u32, kind: IoKind, scale: RunScale) -> f64 {
    let s = sim.clone();
    let spec = *spec;
    sim.run_until(async move {
        let w = volume_world(&s, &spec, cluster_kb).await;
        let cache = w.cache.clone();
        run_iobench(
            &s,
            &w.fs,
            move |f: &ufs::UfsFile| cache.invalidate_vnode(f.id(), 0),
            "vol.dat",
            kind,
            bench_opts(scale),
        )
        .await
        .expect("iobench")
        .kb_per_sec()
    })
}

/// One extentfs-on-array cell (120 KB extents, the paper's best), in KB/s.
fn ext_cell(sim: &Sim, spec: &VolumeSpec, kind: IoKind, scale: RunScale) -> f64 {
    let s = sim.clone();
    let spec = *spec;
    sim.run_until(async move {
        let cpu = Cpu::new(&s);
        let disk = volmgr::build(&s, &spec, DiskParams::sun0424());
        let cache = PageCache::new(&s, PageCacheParams::sparcstation_8mb());
        let (_daemon, rx) =
            PageoutDaemon::spawn(&s, &cache, Some(cpu.clone()), PageoutParams::sparcstation());
        std::mem::forget(rx);
        let fs = extentfs::ExtentFs::format(
            &s,
            &cpu,
            &cache,
            &disk,
            256,
            extentfs::ExtentFsParams::with_extent_blocks(15),
        )
        .expect("format");
        let cache2 = cache.clone();
        run_iobench(
            &s,
            &fs,
            move |f: &extentfs::ExtFile| cache2.invalidate_vnode(f.id(), 0),
            "vol.dat",
            kind,
            bench_opts(scale),
        )
        .await
        .expect("iobench")
        .kb_per_sec()
    })
}

/// Raw sweep results, for tests and EXPERIMENTS.md.
pub struct VolumeData {
    /// `ufs[spec][cluster][0]` = FSR, `[1]` = FSW, in KB/s.
    pub ufs: Vec<Vec<[f64; 2]>>,
    /// `ext[i]` = (FSR, FSW) for `sweep.ext_specs[i]`.
    pub ext: Vec<[f64; 2]>,
}

/// Runs the sweep on the runner's workers and returns raw rates. Run ids
/// are `volume/<spec>/c<KB>k/<kind>` and `volume/<spec>/ext/<kind>`.
pub fn volume_data(sweep: &VolumeSweep, scale: RunScale, runner: &Runner) -> VolumeData {
    let mut plans = Vec::new();
    for sp in &sweep.specs {
        for &kb in &sweep.clusters_kb {
            for kind in [IoKind::SeqRead, IoKind::SeqWrite] {
                let sp = *sp;
                plans.push(RunPlan::new(
                    format!("volume/{sp}/c{kb}k/{}", kind.label()),
                    move |sim: &Sim| ufs_cell(sim, &sp, kb, kind, scale),
                ));
            }
        }
    }
    for sp in &sweep.ext_specs {
        for kind in [IoKind::SeqRead, IoKind::SeqWrite] {
            let sp = *sp;
            plans.push(RunPlan::new(
                format!("volume/{sp}/ext/{}", kind.label()),
                move |sim: &Sim| ext_cell(sim, &sp, kind, scale),
            ));
        }
    }
    let rates = runner.run(plans);
    let ncl = sweep.clusters_kb.len();
    let ufs_total = sweep.specs.len() * ncl * 2;
    let ufs = rates[..ufs_total]
        .chunks(ncl * 2)
        .map(|per_spec| per_spec.chunks(2).map(|c| [c[0], c[1]]).collect())
        .collect();
    let ext = rates[ufs_total..].chunks(2).map(|c| [c[0], c[1]]).collect();
    VolumeData { ufs, ext }
}

/// Renders the stripe-alignment table: FSR/FSW per array per cluster size.
pub fn volume_table(sweep: &VolumeSweep, data: &VolumeData) -> String {
    let mut header = vec!["volume".to_string()];
    for &kb in &sweep.clusters_kb {
        header.push(format!("FSR {kb}K"));
        header.push(format!("FSW {kb}K"));
    }
    let cols: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&cols);
    for (i, sp) in sweep.specs.iter().enumerate() {
        let mut row = vec![sp.to_string()];
        for c in 0..sweep.clusters_kb.len() {
            row.push(kbs(data.ufs[i][c][0]));
            row.push(kbs(data.ufs[i][c][1]));
        }
        t.row(row);
    }
    t.render()
}

/// Renders the UFS-vs-extentfs-on-an-array table. UFS numbers come from
/// the sweep's largest cluster size.
pub fn volume_ext_table(sweep: &VolumeSweep, data: &VolumeData) -> String {
    let last = sweep.clusters_kb.len() - 1;
    let mut t = Table::new(&[
        "volume", "UFS FSR", "ext FSR", "ext/UFS", "UFS FSW", "ext FSW", "ext/UFS",
    ]);
    for (i, sp) in sweep.ext_specs.iter().enumerate() {
        let u = sweep
            .specs
            .iter()
            .position(|s| s == sp)
            .map(|j| data.ufs[j][last])
            .unwrap_or([0.0, 0.0]);
        t.row(vec![
            sp.to_string(),
            kbs(u[0]),
            kbs(data.ext[i][0]),
            ratio(data.ext[i][0], u[0]),
            kbs(u[1]),
            kbs(data.ext[i][1]),
            ratio(data.ext[i][1], u[1]),
        ]);
    }
    t.render()
}

/// Drives the whole experiment and renders both tables (the CLI entry
/// point). `only` restricts the sweep to one array (`--volume <spec>`).
pub fn volume_run(only: Option<&VolumeSpec>, scale: RunScale, runner: &Runner) -> String {
    let sweep = match only {
        Some(sp) => VolumeSweep::only(*sp),
        None => VolumeSweep::paper(),
    };
    let data = volume_data(&sweep, scale, runner);
    let mut out = String::new();
    out.push_str("Stripe alignment: UFS transfer rates (KB/s) by cluster size\n\n");
    out.push_str(&volume_table(&sweep, &data));
    out.push_str("\nUFS (largest cluster) vs extentfs (120KB extents) on an array\n\n");
    out.push_str(&volume_ext_table(&sweep, &data));
    out
}
