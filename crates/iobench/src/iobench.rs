//! The IObench transfer-rate workloads.
//!
//! "The columns are headed by a three letter name indicating the type of
//! I/O. The first letter means File system, the second letter indicates
//! Sequential or Random, and the third letter indicates Read, Write, or
//! Update. The difference between write and update is that in the update
//! case the file's blocks have already been allocated."

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use simkit::{Sim, SimDuration, SimTime};
use vfs::{AccessMode, FileSystem, FsResult, Vnode};

/// The five workload types of Figures 10/11.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoKind {
    /// FSR: sequential read.
    SeqRead,
    /// FSU: sequential update (blocks already allocated).
    SeqUpdate,
    /// FSW: sequential write (fresh allocation).
    SeqWrite,
    /// FRR: random read.
    RandRead,
    /// FRU: random update.
    RandUpdate,
}

impl IoKind {
    /// All five, in the paper's column order.
    pub fn all() -> [IoKind; 5] {
        [
            IoKind::SeqRead,
            IoKind::SeqUpdate,
            IoKind::SeqWrite,
            IoKind::RandRead,
            IoKind::RandUpdate,
        ]
    }

    /// Paper column label.
    pub fn label(self) -> &'static str {
        match self {
            IoKind::SeqRead => "FSR",
            IoKind::SeqUpdate => "FSU",
            IoKind::SeqWrite => "FSW",
            IoKind::RandRead => "FRR",
            IoKind::RandUpdate => "FRU",
        }
    }
}

/// A measured transfer rate.
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Bytes moved by the measured phase.
    pub bytes: u64,
    /// Virtual time the phase took.
    pub elapsed: SimDuration,
}

impl Throughput {
    /// KB/s (the unit of Figure 10).
    pub fn kb_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.bytes as f64 / 1024.0 / self.elapsed.as_secs_f64()
    }
}

/// Workload sizing.
#[derive(Clone, Copy, Debug)]
pub struct BenchOptions {
    /// File size in bytes (must exceed memory for the read workloads to
    /// touch the disk; the measurement machine has 6 MB of page cache).
    pub file_bytes: u64,
    /// Per-call transfer size (IObench used ordinary read/write of block-
    /// sized requests).
    pub io_bytes: usize,
    /// Number of random operations for FRR/FRU.
    pub random_ops: usize,
    /// RNG seed for the random offsets.
    pub seed: u64,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            file_bytes: 16 << 20,
            io_bytes: 8192,
            random_ops: 1024,
            seed: 0x1991,
        }
    }
}

/// Distinct random block indices: a seeded shuffle of the file's blocks,
/// truncated to `ops` (sampling without replacement, so the random
/// workloads never revisit an in-flight block).
fn random_blocks(nio: usize, ops: usize, seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut blocks: Vec<u64> = (0..nio as u64).collect();
    blocks.shuffle(&mut rng);
    blocks.truncate(ops.min(nio));
    blocks
}

/// Runs one IObench workload against `path` on `fs` and returns the
/// measured rate. The file is created/prepared as the workload requires;
/// preparation is excluded from the measurement.
pub async fn run_iobench<F: FileSystem>(
    sim: &Sim,
    fs: &F,
    invalidate: impl Fn(&F::File),
    path: &str,
    kind: IoKind,
    opts: BenchOptions,
) -> FsResult<Throughput> {
    let payload: Vec<u8> = (0..opts.io_bytes).map(|i| (i % 251) as u8).collect();
    let nio = (opts.file_bytes / opts.io_bytes as u64) as usize;

    // ---- preparation (unmeasured) ----
    let file = match kind {
        IoKind::SeqWrite => fs.create(path).await?,
        _ => {
            // The file must exist with all blocks allocated.
            let f = fs.create(path).await?;
            for i in 0..nio {
                f.write(i as u64 * opts.io_bytes as u64, &payload, AccessMode::Copy)
                    .await?;
            }
            f.fsync().await?;
            f
        }
    };
    match kind {
        IoKind::SeqRead | IoKind::RandRead => invalidate(&file),
        _ => {}
    }

    // ---- measured phase ----
    // Read workloads reuse one buffer across every call (the point of the
    // `read_into` primitive): no per-request allocation in the hot loop.
    let mut buf = vec![0u8; opts.io_bytes];
    let t0 = sim.now();
    let bytes = match kind {
        IoKind::SeqRead => {
            let mut total = 0u64;
            for i in 0..nio {
                let got = file
                    .read_into(i as u64 * opts.io_bytes as u64, &mut buf, AccessMode::Copy)
                    .await?;
                total += got as u64;
            }
            total
        }
        IoKind::SeqUpdate | IoKind::SeqWrite => {
            for i in 0..nio {
                file.write(i as u64 * opts.io_bytes as u64, &payload, AccessMode::Copy)
                    .await?;
            }
            file.fsync().await?;
            opts.file_bytes
        }
        IoKind::RandRead => {
            let mut total = 0u64;
            for block in random_blocks(nio, opts.random_ops, opts.seed) {
                let got = file
                    .read_into(block * opts.io_bytes as u64, &mut buf, AccessMode::Copy)
                    .await?;
                total += got as u64;
            }
            total
        }
        IoKind::RandUpdate => {
            for block in random_blocks(nio, opts.random_ops, opts.seed) {
                file.write(block * opts.io_bytes as u64, &payload, AccessMode::Copy)
                    .await?;
            }
            file.fsync().await?;
            (opts.random_ops * opts.io_bytes) as u64
        }
    };
    let elapsed = sim.now().duration_since(t0);
    let _ = SimTime::ZERO;
    Ok(Throughput { bytes, elapsed })
}

/// Sizing for the strided-read workload (`iobench readahead`).
#[derive(Clone, Copy, Debug)]
pub struct StrideOptions {
    /// File size in bytes.
    pub file_bytes: u64,
    /// Bytes read at each record start.
    pub record_bytes: u64,
    /// Distance between successive record starts; `record_bytes` means a
    /// plain sequential scan.
    pub stride_bytes: u64,
    /// Per-call transfer size within a record.
    pub io_bytes: usize,
}

/// Runs a strided read against `path` on `fs`: `record_bytes` are read at
/// every `stride_bytes` boundary (the fixed access pattern of scientific
/// codes and column scans that defeats a sequential-only predictor). The
/// file is written and evicted first; preparation is excluded from the
/// measurement. The cache is invalidated again after the measured phase so
/// speculative reads that never got used are charged to
/// `io.prefetch_wasted_bytes` before the run's registry is snapshotted.
pub async fn run_strided_read<F: FileSystem>(
    sim: &Sim,
    fs: &F,
    invalidate: impl Fn(&F::File),
    path: &str,
    opts: StrideOptions,
) -> FsResult<Throughput> {
    assert!(opts.record_bytes >= opts.io_bytes as u64);
    assert!(opts.stride_bytes >= opts.record_bytes);
    let payload: Vec<u8> = (0..opts.io_bytes).map(|i| (i % 251) as u8).collect();
    let nio = (opts.file_bytes / opts.io_bytes as u64) as usize;

    // ---- preparation (unmeasured) ----
    let file = fs.create(path).await?;
    for i in 0..nio {
        file.write(i as u64 * opts.io_bytes as u64, &payload, AccessMode::Copy)
            .await?;
    }
    file.fsync().await?;
    invalidate(&file);

    // ---- measured phase ----
    let mut buf = vec![0u8; opts.io_bytes];
    let t0 = sim.now();
    let mut total = 0u64;
    let mut start = 0u64;
    while start + opts.record_bytes <= opts.file_bytes {
        let mut off = start;
        while off < start + opts.record_bytes {
            let got = file.read_into(off, &mut buf, AccessMode::Copy).await?;
            total += got as u64;
            off += opts.io_bytes as u64;
        }
        start += opts.stride_bytes;
    }
    let elapsed = sim.now().duration_since(t0);
    // Let in-flight speculative fills complete (virtual time) so the final
    // invalidate never meets a busy page, then retire the stragglers.
    sim.sleep(SimDuration::from_secs(2)).await;
    invalidate(&file);
    Ok(Throughput {
        bytes: total,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{paper_world, Config, WorldOptions};

    fn small_opts() -> BenchOptions {
        BenchOptions {
            file_bytes: 1 << 20, // 1 MB on the small test world.
            io_bytes: 8192,
            random_ops: 64,
            seed: 7,
        }
    }

    #[test]
    fn all_kinds_run_on_small_world() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let opts = WorldOptions {
                full_scale: false,
                ..WorldOptions::default()
            };
            let w = paper_world(&s, Config::A.tuning(), opts).await.unwrap();
            for kind in IoKind::all() {
                let cache = w.cache.clone();
                let t = run_iobench(
                    &s,
                    &w.fs,
                    move |f: &ufs::UfsFile| {
                        cache.invalidate_vnode(vfs::Vnode::id(f), 0);
                    },
                    &format!("bench-{}", kind.label()),
                    kind,
                    small_opts(),
                )
                .await
                .unwrap();
                assert!(t.kb_per_sec() > 0.0, "{}: zero throughput", kind.label());
                w.fs.remove(&format!("bench-{}", kind.label()))
                    .await
                    .unwrap();
            }
        });
    }

    #[test]
    fn sequential_read_faster_clustered_than_blocked() {
        let sim = Sim::new();
        let s = sim.clone();
        let (a, d) = sim.run_until(async move {
            let opts = WorldOptions {
                full_scale: false,
                ..WorldOptions::default()
            };
            let wa = paper_world(&s, Config::A.tuning(), opts).await.unwrap();
            let ca = wa.cache.clone();
            let a = run_iobench(
                &s,
                &wa.fs,
                move |f: &ufs::UfsFile| ca.invalidate_vnode(vfs::Vnode::id(f), 0),
                "f",
                IoKind::SeqRead,
                small_opts(),
            )
            .await
            .unwrap();
            let wd = paper_world(&s, Config::D.tuning(), opts).await.unwrap();
            let cd = wd.cache.clone();
            let d = run_iobench(
                &s,
                &wd.fs,
                move |f: &ufs::UfsFile| cd.invalidate_vnode(vfs::Vnode::id(f), 0),
                "f",
                IoKind::SeqRead,
                small_opts(),
            )
            .await
            .unwrap();
            (a.kb_per_sec(), d.kb_per_sec())
        });
        assert!(
            a > d,
            "clustered sequential read ({a:.0} KB/s) should beat blocked ({d:.0} KB/s)"
        );
    }
}
