//! The `iobench faults` experiment: end-to-end service under injected
//! faults — throughput and p99 read latency before, during, and after a
//! fault episode, for UFS and extentfs on RAID-0/1/5 arrays of
//! fault-wrapped spindles.
//!
//! The default matrix runs a built-in scenario per array personality:
//!
//! - **RAID-0** has no redundancy, so the episode is recoverable: a batch
//!   of transient media-error ranges is armed on spindle 0 mid-run. Every
//!   hit surfaces as a parent media error and is absorbed by the bounded
//!   retry in `vfs::iopath` (`io.retries`), so the *faulted* phase shows a
//!   latency spike, not data loss.
//! - **RAID-1/5** lose a whole spindle mid-run ([`FaultDevice`] starts
//!   answering `DeviceGone`), serve *degraded* (mirror fallback / parity
//!   reconstruction), then a blank spare is swapped in and
//!   [`Volume::rebuild`] runs **online** while the workload keeps reading —
//!   the *rebuilding* phase measures that contention — and the *rebuilt*
//!   phase shows recovery.
//!
//! Every read is integrity-checked against the written pattern; the
//! mismatch count is part of the report and must be zero for the built-in
//! scenarios. UFS cells finish with an unmount and a structured
//! [`ufs::fsck`] report; extentfs cells with the allocator/tree `check()`.
//!
//! `--faults <spec>` replaces the built-in scenario: the plan's clauses
//! configure the members of one array (`--volume`, default `raid5:5:64k`)
//! and the driver buckets phases around the plan's earliest `die=` instant,
//! rebuilding whatever died once the measured passes finish. All
//! randomness is seeded, so output is byte-identical at any `--jobs`.

use std::cell::Cell;
use std::rc::Rc;

use clufs::Tuning;
use diskmodel::{Disk, DiskParams, FaultDevice, FaultPlan, SharedDevice};
use pagecache::{PageCache, PageCacheParams, PageoutDaemon, PageoutParams};
use simkit::{Cpu, Sim, SimTime};
use ufs::{build_world_on, fsck, MkfsOptions, UfsParams};
use vfs::{AccessMode, FileSystem, Vnode};
use volmgr::{RaidLevel, SpindleState, Volume, VolumeSpec};

use crate::report::{kbs, Table};
use crate::runner::{RunPlan, Runner};

/// 8 KB blocks per benchmark file (quick / full).
const BLOCKS_QUICK: u64 = 128;
const BLOCKS_FULL: u64 = 192;
const BLOCK: usize = 8192;

/// Read passes per phase window (healthy, pre-rebuild degraded, post-
/// recovery), quick / full. The rebuilding window is open-ended: passes
/// run until the online rebuild completes.
const PASSES_QUICK: (u32, u32, u32) = (2, 2, 2);
const PASSES_FULL: (u32, u32, u32) = (3, 3, 3);

/// The spindle the built-in redundant scenarios kill.
const VICTIM: u32 = 1;

/// What drives the fault episode in one cell.
enum Scenario {
    /// Kill [`VICTIM`] after the healthy passes, then replace + rebuild.
    Redundant,
    /// Arm transient error ranges on spindle 0 (no redundancy to lose).
    Striped,
    /// A user `--faults` plan: faults are fixed at construction; phases
    /// bucket around the plan's earliest `die=` instant, and whatever died
    /// is rebuilt after the measured passes.
    Custom { die: Option<SimTime> },
}

/// One phase of a cell: a time window and the reads completing inside it.
#[derive(Clone, Debug)]
pub struct PhaseStats {
    /// Phase label (`healthy`, `degraded`, `rebuilding`, `rebuilt`,
    /// `faulted`, `recovered`).
    pub label: &'static str,
    /// Successful-read payload over the window, in KB/s.
    pub kb_per_sec: f64,
    /// 99th-percentile per-read latency, in milliseconds.
    pub p99_ms: f64,
    /// Reads completing in the window.
    pub reads: usize,
}

/// Everything one (array × file system) cell reports.
#[derive(Clone, Debug)]
pub struct FaultCell {
    /// `faults/<spec>/<fs>` run id.
    pub id: String,
    /// Array spec (first table column).
    pub volume: String,
    /// `ufs` or `extentfs`.
    pub fs: &'static str,
    /// Per-phase throughput/latency, in episode order.
    pub phases: Vec<PhaseStats>,
    /// Reads that returned wrong bytes or an error. Must be zero for the
    /// built-in scenarios (redundancy or retries absorb every fault).
    pub mismatches: u64,
    /// Total reads across all phases.
    pub reads: usize,
    /// Faults the wrappers injected (`fault.injected{kind=*}`).
    pub injected: u64,
    /// Bounded-retry attempts the I/O path spent (`io.retries`).
    pub io_retries: u64,
    /// Reads served by mirror fallback / parity reconstruction.
    pub degraded_reads: u64,
    /// Rebuild sweep units the online rebuild completed.
    pub rebuild_rows: u64,
    /// Post-run integrity summary: the structured `fsck` report (UFS) or
    /// the metadata `check()` verdict (extentfs).
    pub integrity: String,
}

/// A deterministic pattern distinguishing every byte of every block.
fn block_pattern(block: u64) -> Vec<u8> {
    (0..BLOCK)
        .map(|i| (block.wrapping_mul(2654435761).wrapping_add(i as u64) % 251) as u8)
        .collect()
}

/// Episode timestamps carved out of one cell's run.
#[derive(Clone, Copy, Default)]
struct Events {
    fault: Option<SimTime>,
    rebuild_start: Option<SimTime>,
    rebuilt: Option<SimTime>,
}

/// `(completion time, latency ns, bytes verified ok)` per read.
type Sample = (SimTime, u64, bool);

/// One full sequential re-read of the file, integrity-checking every
/// block. Invalidates the cache first so the array actually serves it.
async fn read_pass<F: FileSystem, I: Fn(&F::File)>(
    sim: &Sim,
    file: &F::File,
    invalidate: &I,
    nblocks: u64,
    samples: &mut Vec<Sample>,
    mismatches: &mut u64,
) {
    invalidate(file);
    let mut buf = vec![0u8; BLOCK];
    for i in 0..nblocks {
        let t = sim.now();
        let ok = match file
            .read_into(i * BLOCK as u64, &mut buf, AccessMode::Copy)
            .await
        {
            Ok(n) => n == BLOCK && buf == block_pattern(i),
            Err(_) => false,
        };
        if !ok {
            *mismatches += 1;
        }
        let done = sim.now();
        samples.push((done, done.duration_since(t).as_nanos(), ok));
    }
}

/// A blank replacement drive compatible with the array's members.
fn spare(sim: &Sim, k: u32) -> SharedDevice {
    Rc::new(Disk::new_spindle(sim, DiskParams::small_test(), 100 + k)) as SharedDevice
}

/// Runs the measured passes and the fault episode for one mounted cell.
/// Returns the samples, episode timestamps, and mismatch count.
#[allow(clippy::too_many_arguments)]
async fn drive_passes<F: FileSystem>(
    sim: &Sim,
    fs: &F,
    invalidate: impl Fn(&F::File),
    vol: &Volume,
    faults: &[FaultDevice],
    scenario: &Scenario,
    quick: bool,
) -> (Vec<Sample>, Events, u64) {
    let nblocks = if quick { BLOCKS_QUICK } else { BLOCKS_FULL };
    let (h, d, r) = if quick { PASSES_QUICK } else { PASSES_FULL };

    // Lay the file down and make it durable before measuring.
    let file = fs.create("faults.dat").await.expect("create");
    for i in 0..nblocks {
        file.write(i * BLOCK as u64, &block_pattern(i), AccessMode::Copy)
            .await
            .expect("prepare write");
    }
    file.fsync().await.expect("prepare fsync");

    let mut samples = Vec::new();
    let mut mismatches = 0u64;
    let mut ev = Events::default();
    macro_rules! pass {
        () => {
            read_pass::<F, _>(
                sim,
                &file,
                &invalidate,
                nblocks,
                &mut samples,
                &mut mismatches,
            )
            .await
        };
    }

    match scenario {
        Scenario::Redundant => {
            for _ in 0..h {
                pass!();
            }
            // The spindle stops answering; service continues degraded.
            faults[VICTIM as usize].schedule_death(sim.now());
            ev.fault = Some(sim.now());
            for _ in 0..d {
                pass!();
            }
            // Swap in a blank spare and rebuild online: reads keep going
            // and compete with the sweep until it finishes.
            vol.replace_spindle(VICTIM, spare(sim, VICTIM));
            ev.rebuild_start = Some(sim.now());
            let v = vol.clone();
            let done: Rc<Cell<Option<SimTime>>> = Rc::new(Cell::new(None));
            let (d2, s2) = (done.clone(), sim.clone());
            drop(sim.spawn(async move {
                v.rebuild(VICTIM).await.expect("rebuild");
                d2.set(Some(s2.now()));
            }));
            while done.get().is_none() {
                pass!();
            }
            ev.rebuilt = done.get();
            for _ in 0..r {
                pass!();
            }
        }
        Scenario::Striped => {
            for _ in 0..h {
                pass!();
            }
            // Transient ranges blanket spindle 0's address space; each
            // fails two touches then heals — well inside the bounded-retry
            // budget, so every read still completes.
            ev.fault = Some(sim.now());
            let span = faults[0].base().total_sectors() / 8;
            for rge in 0..8 {
                faults[0].arm_transient(rge * span, span as u32, 2);
            }
            for _ in 0..d {
                pass!();
            }
            ev.rebuilt = Some(sim.now());
            for _ in 0..r {
                pass!();
            }
        }
        Scenario::Custom { die } => {
            ev.fault = *die;
            for _ in 0..h + d {
                pass!();
            }
            if vol.spec().level != RaidLevel::Raid0 {
                let dead: Vec<u32> = (0..vol.spindles() as u32)
                    .filter(|&k| vol.spindle_state(k) == SpindleState::Dead)
                    .collect();
                if !dead.is_empty() {
                    ev.rebuild_start = Some(sim.now());
                    for k in dead {
                        vol.replace_spindle(k, spare(sim, k));
                        vol.rebuild(k).await.expect("rebuild");
                    }
                    ev.rebuilt = Some(sim.now());
                }
            }
            for _ in 0..r {
                pass!();
            }
        }
    }
    (samples, ev, mismatches)
}

/// Buckets samples into labelled phase windows and computes per-phase
/// throughput and p99.
fn bucket(
    samples: &[Sample],
    t0: SimTime,
    end: SimTime,
    ev: Events,
    striped: bool,
) -> Vec<PhaseStats> {
    // Window boundaries in episode order; a missing event collapses its
    // window to nothing and the phase is dropped.
    let fault = ev.fault.unwrap_or(end);
    let rb_start = ev.rebuild_start.unwrap_or(ev.rebuilt.unwrap_or(end));
    let rebuilt = ev.rebuilt.unwrap_or(end);
    let (during, after) = if striped {
        ("faulted", "recovered")
    } else {
        ("degraded", "rebuilt")
    };
    let windows: [(&'static str, SimTime, SimTime); 4] = [
        ("healthy", t0, fault),
        (during, fault, rb_start),
        ("rebuilding", rb_start, rebuilt),
        (after, rebuilt, end),
    ];
    let mut out = Vec::new();
    for (label, lo, hi) in windows {
        if hi <= lo {
            continue;
        }
        let mut lats: Vec<u64> = Vec::new();
        let mut bytes = 0u64;
        for &(done, ns, ok) in samples {
            if done > lo && done <= hi {
                lats.push(ns);
                if ok {
                    bytes += BLOCK as u64;
                }
            }
        }
        if lats.is_empty() {
            continue;
        }
        lats.sort_unstable();
        let p99 = lats[(lats.len() * 99 / 100).min(lats.len() - 1)];
        let secs = hi.duration_since(lo).as_secs_f64();
        out.push(PhaseStats {
            label,
            kb_per_sec: if secs > 0.0 {
                bytes as f64 / 1024.0 / secs
            } else {
                0.0
            },
            p99_ms: p99 as f64 / 1e6,
            reads: lats.len(),
        });
    }
    out
}

/// Builds the fault-wrapped array for one cell.
fn build_array(
    sim: &Sim,
    spec: &VolumeSpec,
    plan: Option<&FaultPlan>,
) -> (Volume, Vec<FaultDevice>) {
    let seed = plan.map_or(0x1991, |p| p.seed);
    let mut faults = Vec::new();
    let mut members: Vec<SharedDevice> = Vec::new();
    for k in 0..spec.spindles {
        let base: SharedDevice = Rc::new(Disk::new_spindle(sim, DiskParams::small_test(), k));
        let sf = plan.map(|p| p.for_spindle(k)).unwrap_or_default();
        let f = FaultDevice::new(sim, base, sf, seed ^ k as u64);
        faults.push(f.clone());
        members.push(Rc::new(f) as SharedDevice);
    }
    (Volume::with_children(sim, spec, members), faults)
}

/// Runs one (array × file system) cell on its own sim and reports it.
fn run_cell(
    sim: &Sim,
    spec: VolumeSpec,
    on_ufs: bool,
    plan: Option<FaultPlan>,
    quick: bool,
) -> FaultCell {
    let s = sim.clone();
    let (phases, mismatches, reads, integrity) = sim.run_until(async move {
        let (vol, faults) = build_array(&s, &spec, plan.as_ref());
        let disk: SharedDevice = Rc::new(vol.clone());
        let scenario = match (&plan, spec.level) {
            (Some(p), _) => Scenario::Custom {
                die: (0..spec.spindles)
                    .filter_map(|k| p.for_spindle(k).die_at)
                    .min(),
            },
            (None, RaidLevel::Raid0) => Scenario::Striped,
            (None, _) => Scenario::Redundant,
        };
        if on_ufs {
            let w = build_world_on(
                &s,
                disk.clone(),
                PageCacheParams::small_test(),
                MkfsOptions::small_test(),
                UfsParams::test(Tuning::config_a()),
            )
            .await
            .expect("ufs world");
            let t0 = s.now();
            let cache = w.cache.clone();
            let (samples, ev, mism) = drive_passes(
                &s,
                &w.fs,
                move |f: &ufs::UfsFile| cache.invalidate_vnode(f.id(), 0),
                &vol,
                &faults,
                &scenario,
                quick,
            )
            .await;
            let end = s.now();
            // Clean unmount, then the structured fsck verdict straight off
            // the (possibly rebuilt) array.
            w.fs.unmount().await.expect("unmount");
            let report = fsck(&*disk).await.expect("fsck");
            let integrity = format!(
                "fsck: checked={} repaired={} unfixable={} ({})",
                report.checked,
                report.repaired.len(),
                report.unfixable.len(),
                if report.is_clean() { "clean" } else { "DIRTY" }
            );
            let n = samples.len();
            (
                bucket(&samples, t0, end, ev, matches!(scenario, Scenario::Striped)),
                mism,
                n,
                integrity,
            )
        } else {
            let cpu = Cpu::new(&s);
            let cache = PageCache::new(&s, PageCacheParams::small_test());
            let (_daemon, rx) =
                PageoutDaemon::spawn(&s, &cache, Some(cpu.clone()), PageoutParams::small_test());
            std::mem::forget(rx);
            let fs = extentfs::ExtentFs::format(
                &s,
                &cpu,
                &cache,
                &disk,
                64,
                extentfs::ExtentFsParams::with_extent_blocks(15),
            )
            .expect("format");
            let t0 = s.now();
            let cache2 = cache.clone();
            let (samples, ev, mism) = drive_passes(
                &s,
                &fs,
                move |f: &extentfs::ExtFile| cache2.invalidate_vnode(f.id(), 0),
                &vol,
                &faults,
                &scenario,
                quick,
            )
            .await;
            let end = s.now();
            let problems = fs.check();
            let integrity = if problems.is_empty() {
                "check: clean".to_string()
            } else {
                format!("check: {} problem(s)", problems.len())
            };
            let n = samples.len();
            (
                bucket(&samples, t0, end, ev, matches!(scenario, Scenario::Striped)),
                mism,
                n,
                integrity,
            )
        }
    });
    let st = sim.stats();
    let fs = if on_ufs { "ufs" } else { "extentfs" };
    FaultCell {
        id: format!("faults/{spec}/{fs}"),
        volume: spec.to_string(),
        fs,
        phases,
        mismatches,
        reads,
        injected: st.counter_value("fault.injected{kind=media}")
            + st.counter_value("fault.injected{kind=gone}"),
        io_retries: st.counter_value("io.retries"),
        degraded_reads: st.counter_value("vol.degraded_reads"),
        rebuild_rows: st.counter_value("vol.rebuild_rows"),
        integrity,
    }
}

/// The arrays the default matrix covers.
fn default_specs() -> Vec<VolumeSpec> {
    ["raid0:4:64k", "raid1:2", "raid5:5:64k"]
        .iter()
        .map(|s| VolumeSpec::parse(s).expect("built-in spec"))
        .collect()
}

/// Runs the cells on the runner's workers. Run ids are
/// `faults/<spec>/<fs>`.
pub fn faults_data(
    plan: Option<&FaultPlan>,
    volume: Option<&VolumeSpec>,
    quick: bool,
    runner: &Runner,
) -> Vec<FaultCell> {
    let specs = match (plan, volume) {
        // A custom plan targets one array (default: the widest built-in).
        (Some(_), Some(v)) => vec![*v],
        (Some(_), None) => vec![VolumeSpec::parse("raid5:5:64k").expect("built-in spec")],
        (None, Some(v)) => vec![*v],
        (None, None) => default_specs(),
    };
    let mut plans = Vec::new();
    for spec in specs {
        for on_ufs in [true, false] {
            let p = plan.cloned();
            let fs = if on_ufs { "ufs" } else { "extentfs" };
            plans.push(RunPlan::new(
                format!("faults/{spec}/{fs}"),
                move |sim: &Sim| run_cell(sim, spec, on_ufs, p, quick),
            ));
        }
    }
    runner.run(plans)
}

/// Renders the per-phase table and the per-cell fault/integrity summary.
pub fn faults_table(cells: &[FaultCell]) -> String {
    let mut t = Table::new(&["volume", "fs", "phase", "KB/s", "p99(ms)", "reads"]);
    for c in cells {
        for p in &c.phases {
            t.row(vec![
                c.volume.clone(),
                c.fs.to_string(),
                p.label.to_string(),
                kbs(p.kb_per_sec),
                format!("{:.2}", p.p99_ms),
                p.reads.to_string(),
            ]);
        }
    }
    let mut out = t.render();
    out.push('\n');
    for c in cells {
        out.push_str(&format!(
            "{}/{}: {} mismatch(es) in {} read(s); injected={} io.retries={} \
             degraded_reads={} rebuild_rows={}; {}\n",
            c.volume,
            c.fs,
            c.mismatches,
            c.reads,
            c.injected,
            c.io_retries,
            c.degraded_reads,
            c.rebuild_rows,
            c.integrity,
        ));
    }
    out
}

/// Drives the whole experiment (the CLI entry point).
pub fn faults_run(
    plan: Option<&FaultPlan>,
    volume: Option<&VolumeSpec>,
    quick: bool,
    runner: &Runner,
) -> String {
    faults_table(&faults_data(plan, volume, quick, runner))
}
