//! # iobench — the paper's evaluation workloads
//!
//! Reproduces the measurement programs behind the paper's Figures 9–12 and
//! its in-text experiments:
//!
//! - [`iobench`]: the five transfer-rate workloads — FSR, FSU, FSW, FRR,
//!   FRU (File system Sequential/Random × Read/Write/Update) — over any
//!   [`vfs::FileSystem`].
//! - [`configs`]: the Figure 9 run matrix (A/B/C/D) and full-scale world
//!   construction (400 MB drive, 8 MB SPARCstation, pageout daemon).
//! - [`cpu_bench`]: the Figure 12 mmap CPU comparison.
//! - [`musbus`]: a MusBus-like timesharing mix (small programs, small I/O)
//!   that clustering should barely improve.
//! - [`aging`]: the allocator-contiguity study (mean extent sizes on empty
//!   vs aged file systems).
//! - [`streams`]: the multi-stream fairness workload — N concurrent tagged
//!   streams whose per-stream (`…{stream=N}`) metrics attribute disk
//!   bandwidth and throttle stalls to each competitor.
//! - [`readahead`]: the strided-read prefetch sweep (`iobench readahead`) —
//!   stride × record size × policy (off / fixed-1 / adaptive) with
//!   throughput, prefetch-accuracy, and wasted-read tables.
//! - [`faults`]: the fault-injection experiment (`iobench faults`) —
//!   throughput and p99 read latency across spindle failure, degraded
//!   service, and online rebuild on arrays of fault-wrapped members.
//! - [`runner`]: the parallel run fan-out behind `iobench --jobs N` —
//!   experiments describe independent simulated runs as [`RunPlan`]s and a
//!   [`Runner`] executes them across worker threads with byte-identical
//!   output for any jobs count.
//! - [`report`]: fixed-width table rendering for the regenerated figures.
//! - [`traceout`]: Chrome trace-event export (`iobench --trace`) plus the
//!   latency-attribution and per-fault timeline tables built from spans.
//! - [`perfout`]: the host-profile report behind `iobench --perf` — per-
//!   worker wall-clock utilization, top phase sinks, and allocation churn
//!   assembled from `simkit::perfmon` records.

pub mod aging;
pub mod configs;
pub mod cpu_bench;
pub mod experiments;
pub mod faults;
pub mod iobench;
pub mod musbus;
pub mod perfout;
pub mod readahead;
pub mod report;
pub mod runner;
pub mod streams;
pub mod traceout;
pub mod volume;

pub use configs::{paper_world, Config, WorldOptions};
pub use faults::{faults_data, faults_run, FaultCell, PhaseStats};
pub use iobench::{run_iobench, run_strided_read, IoKind, StrideOptions, Throughput};
pub use readahead::{readahead_data, readahead_run, RaCell, RaData};
pub use runner::{RunPlan, Runner};
pub use streams::{run_streams, StreamRole, StreamRun, StreamsOptions};
pub use volume::{volume_data, volume_run, VolumeData, VolumeSweep};
