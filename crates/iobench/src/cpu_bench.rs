//! The Figure 12 CPU comparison: mmap-mode sequential read of a 16 MB file.
//!
//! "The benchmark is similar to IObench, in fact it shows identical I/O
//! rates, but uses the mmap interface to avoid the copying of data from the
//! kernel to the user ... The cpu times show the seconds used by the CPU to
//! read a 16MB file."

use simkit::{Sim, SimDuration};
use vfs::{AccessMode, FileSystem, FsResult, Vnode};

/// Result of one CPU-overhead run.
#[derive(Clone, Copy, Debug)]
pub struct CpuBenchResult {
    /// Virtual CPU seconds consumed by the measured read phase.
    pub cpu: SimDuration,
    /// Wall (virtual) time of the measured phase.
    pub elapsed: SimDuration,
    /// Bytes read.
    pub bytes: u64,
}

/// Reads `file_bytes` of `path` through the mapped (no-copy) access path
/// and reports the CPU time charged. Preparation (writing the file,
/// invalidating the cache) is excluded.
pub async fn mmap_read_cpu(
    sim: &Sim,
    world: &ufs::World,
    path: &str,
    file_bytes: u64,
) -> FsResult<CpuBenchResult> {
    let io = 8192usize;
    let n = (file_bytes / io as u64) as usize;
    let payload: Vec<u8> = (0..io).map(|i| (i % 253) as u8).collect();
    let f = world.fs.create(path).await?;
    for i in 0..n {
        f.write(i as u64 * io as u64, &payload, AccessMode::Copy)
            .await?;
    }
    f.fsync().await?;
    world.cache.invalidate_vnode(f.id(), 0);

    let cpu0 = world.cpu.busy();
    let t0 = sim.now();
    let mut bytes = 0u64;
    let mut buf = vec![0u8; io];
    for i in 0..n {
        let got = f
            .read_into(i as u64 * io as u64, &mut buf, AccessMode::Mapped)
            .await?;
        bytes += got as u64;
    }
    Ok(CpuBenchResult {
        cpu: world.cpu.busy() - cpu0,
        elapsed: sim.now().duration_since(t0),
        bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{paper_world, Config, WorldOptions};

    #[test]
    fn new_path_uses_less_cpu_than_old() {
        let sim = Sim::new();
        let s = sim.clone();
        let (new, old) = sim.run_until(async move {
            let opts = WorldOptions {
                full_scale: false,
                ..WorldOptions::default()
            };
            let wa = paper_world(&s, Config::A.tuning(), opts).await.unwrap();
            let new = mmap_read_cpu(&s, &wa, "m", 1 << 20).await.unwrap();
            let wd = paper_world(&s, Config::D.tuning(), opts).await.unwrap();
            let old = mmap_read_cpu(&s, &wd, "m", 1 << 20).await.unwrap();
            (new, old)
        });
        // With zero-cost test worlds both are zero; this test only checks
        // the harness runs and moves the right amount of data.
        assert_eq!(new.bytes, 1 << 20);
        assert_eq!(old.bytes, 1 << 20);
    }
}
