//! Self-contained experiment drivers: each regenerates one of the paper's
//! tables or figures and returns it as rendered text (plus raw numbers for
//! tests and EXPERIMENTS.md).

use clufs::Tuning;
use diskmodel::{Disk, DiskParams};
use pagecache::{PageCache, PageCacheParams, PageoutDaemon, PageoutParams};
use simkit::{Cpu, Sim};
use vfs::{FileSystem, Vnode};

use std::cell::RefCell;

use crate::aging::{
    age_filesystem, clustering_decay, probe_extents, AgingOptions, DecayOptions, DecayPoint,
    ExtAgedWorld,
};
use crate::configs::{paper_world, Config, WorldOptions};
use crate::cpu_bench::mmap_read_cpu;
use crate::iobench::{run_iobench, BenchOptions, IoKind, Throughput};
use crate::musbus::{run_musbus, MusbusOptions};
use crate::report::{kbs, ratio, Table};
use crate::runner::{RunPlan, Runner};
use crate::streams::{run_streams, StreamsOptions};

/// Collects labeled per-run metrics snapshots (and, with
/// [`StatsSink::with_tracing`], span traces) during an experiment.
///
/// Every experiment builds a fresh [`Sim`] (and therefore a fresh metrics
/// registry) per simulated run via [`StatsSink::sim`]; the driver captures
/// each run's full registry here, and the `--stats-json` flag serializes
/// the collection as one document (schema `iobench-stats/v8`, documented in
/// DESIGN.md "Observability"; v2 added the labelled `base{stream=N}` metric
/// names, v3 added interpolated `p50`/`p95`/`p99` quantiles to histogram
/// snapshots, v4 added the `base{spindle=K}` label family emitted by
/// `volmgr` arrays and the `volume/...` run ids, v5 added the `extentfs.*`
/// fragmentation gauges — `short_extents`, `mean_extent_blocks`,
/// `extents_per_file`, `inline_files` — and the `aging/...` run ids, v6
/// added the telemetry export points: `cache.free_pages`,
/// `cache.dirty_pages`, `core.throttle_waiting`, and per-spindle
/// `disk.queue_depth{spindle=K}`, v7 adds the fault-injection and
/// recovery counters — `fault.injected{kind=media|gone|torn|lost}`,
/// `io.errors{kind=media|gone}`, `io.retries`, `vol.degraded_reads`,
/// `vol.rebuild_rows`, `vol.spindle_dead`, the `vol.rebuild_progress`
/// gauge — and the `faults/...` run ids, v8 adds the prefetch-engine
/// instrumentation — `io.prefetch_issued`, `io.prefetch_hits`,
/// `io.prefetch_wasted_bytes`, the `io.prefetch_distance` histogram —
/// and the `readahead/...` run ids). Snapshots are pure
/// functions of the virtual-time simulation, so two identical runs produce
/// byte-identical documents.
#[derive(Default)]
pub struct StatsSink {
    /// `(run id, registry JSON)` in run order.
    runs: RefCell<Vec<(String, String)>>,
    /// Whether [`StatsSink::sim`] arms the span tracer on new sims.
    tracing: bool,
    /// Virtual-time telemetry sampling interval: when set,
    /// [`StatsSink::sim`] arms the sampler on new sims and the per-run
    /// series land in `timelines` (behind `--timeline`).
    sample_every: Option<simkit::SimDuration>,
    /// `(run id, drained spans)` in run order (empty unless tracing).
    traces: RefCell<Vec<(String, Vec<simkit::Span>)>>,
    /// `(run id, sampled series)` in run order (empty unless sampling).
    timelines: RefCell<Vec<(String, Vec<simkit::perfmon::Series>)>>,
}

impl StatsSink {
    /// Upper bound on sampler ticks per run: bounds the timeline document
    /// and guarantees the sampler task quiesces even if a run misbehaves.
    pub const MAX_SAMPLES_PER_RUN: u64 = 200_000;

    /// An empty sink.
    pub fn new() -> StatsSink {
        StatsSink::default()
    }

    /// An empty sink that also captures span traces: sims built through
    /// [`StatsSink::sim`] get their tracer enabled before the run, and
    /// [`StatsSink::push`] drains the recorded spans.
    pub fn with_tracing() -> StatsSink {
        StatsSink {
            tracing: true,
            ..StatsSink::default()
        }
    }

    /// An empty sink with both capture features selectable: span tracing
    /// (`--trace`) and virtual-time telemetry sampling at `sample_every`
    /// (`--timeline`/`--sample-every`). The CLI builds its sink here.
    pub fn with_capture(tracing: bool, sample_every: Option<simkit::SimDuration>) -> StatsSink {
        StatsSink {
            tracing,
            sample_every,
            ..StatsSink::default()
        }
    }

    /// Builds the sim an experiment run should use, with the span tracer
    /// enabled when this sink traces and the telemetry sampler armed when
    /// it samples. Experiments call this (via [`sink_sim`]) instead of
    /// `Sim::new()` so `--trace`/`--timeline` reach every run without
    /// per-experiment plumbing.
    pub fn sim(&self) -> Sim {
        let sim = Sim::new();
        if self.tracing {
            sim.tracer().set_enabled(true);
        }
        if let Some(every) = self.sample_every {
            sim.telemetry()
                .start(&sim, every, Self::MAX_SAMPLES_PER_RUN);
        }
        sim
    }

    /// Whether sims built through this sink record span traces.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// The telemetry sampling interval, when this sink samples.
    pub fn sample_every(&self) -> Option<simkit::SimDuration> {
        self.sample_every
    }

    /// Captures `sim`'s entire metrics registry under `id`
    /// (`experiment/run` path style, e.g. `fig10/A/FSR`), draining the
    /// run's spans and sampled timeline alongside when enabled.
    pub fn push(&self, id: impl Into<String>, sim: &Sim) {
        let id = id.into();
        if self.tracing {
            self.traces
                .borrow_mut()
                .push((id.clone(), sim.tracer().take_spans()));
        }
        if self.sample_every.is_some() {
            self.timelines
                .borrow_mut()
                .push((id.clone(), sim.telemetry().take_series()));
        }
        self.runs.borrow_mut().push((id, sim.stats().to_json()));
    }

    /// Captures an already-serialized run outcome (how the parallel
    /// [`Runner`](crate::runner::Runner) re-emits worker results in plan
    /// order: workers serialize on their own thread, the sink only ever
    /// sees main-thread pushes).
    pub fn push_outcome(
        &self,
        id: &str,
        stats_json: Option<String>,
        spans: Vec<simkit::Span>,
        timeline: Vec<simkit::perfmon::Series>,
    ) {
        if self.tracing {
            self.traces.borrow_mut().push((id.to_string(), spans));
        }
        if self.sample_every.is_some() {
            self.timelines.borrow_mut().push((id.to_string(), timeline));
        }
        if let Some(stats) = stats_json {
            self.runs.borrow_mut().push((id.to_string(), stats));
        }
    }

    /// Number of captured runs.
    pub fn len(&self) -> usize {
        self.runs.borrow().len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The captured `(run id, registry JSON)` pairs, in run order.
    pub fn runs(&self) -> Vec<(String, String)> {
        self.runs.borrow().clone()
    }

    /// Consumes the sink, yielding the captured `(run id, registry JSON)`
    /// pairs without cloning them (use on emit paths; [`StatsSink::runs`]
    /// clones for callers that still need the sink).
    pub fn into_runs(self) -> Vec<(String, String)> {
        self.runs.into_inner()
    }

    /// The captured `(run id, spans)` traces, in run order (empty unless
    /// built with [`StatsSink::with_tracing`]).
    pub fn traces(&self) -> Vec<(String, Vec<simkit::Span>)> {
        self.traces.borrow().clone()
    }

    /// Consumes the sink, yielding the captured traces without cloning
    /// every span (traces dwarf the stats snapshots, so the `--trace`
    /// emit path uses this).
    pub fn into_traces(self) -> Vec<(String, Vec<simkit::Span>)> {
        self.traces.into_inner()
    }

    /// The captured `(run id, series)` timelines, in run order (empty
    /// unless the sink samples).
    pub fn timelines(&self) -> Vec<(String, Vec<simkit::perfmon::Series>)> {
        self.timelines.borrow().clone()
    }

    /// Serializes the sampled timelines as the `--timeline` document
    /// (schema `iobench-timeline/v1`): per run, per metric, sparse
    /// `[virtual_ns, value]` points recorded only on change. A pure
    /// function of the virtual-time runs — byte-identical across
    /// identical invocations and any `--jobs` value.
    pub fn timeline_json(&self, experiment: &str) -> String {
        use std::fmt::Write as _;
        let every = self.sample_every.map(|d| d.as_nanos()).unwrap_or(0);
        let mut runs = String::new();
        for (i, (id, series)) in self.timelines.borrow().iter().enumerate() {
            if i > 0 {
                runs.push(',');
            }
            let _ = write!(runs, "{{\"id\":\"{id}\",\"series\":[");
            for (j, (name, points)) in series.iter().enumerate() {
                if j > 0 {
                    runs.push(',');
                }
                let _ = write!(runs, "{{\"name\":\"{name}\",\"points\":[");
                for (k, (t, v)) in points.iter().enumerate() {
                    if k > 0 {
                        runs.push(',');
                    }
                    if v.is_finite() {
                        let _ = write!(runs, "[{t},{v}]");
                    } else {
                        let _ = write!(runs, "[{t},null]");
                    }
                }
                runs.push_str("]}");
            }
            runs.push_str("]}");
        }
        format!(
            "{{\"schema\":\"iobench-timeline/v1\",\"experiment\":\"{experiment}\",\
             \"sample_every_ns\":{every},\"runs\":[{runs}]}}"
        )
    }

    /// Serializes the collection as the `--stats-json` document.
    pub fn to_json(&self, experiment: &str) -> String {
        let runs = self
            .runs
            .borrow()
            .iter()
            .map(|(id, stats)| format!("{{\"id\":\"{id}\",\"stats\":{stats}}}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"iobench-stats/v8\",\"experiment\":\"{experiment}\",\"runs\":[{runs}]}}"
        )
    }
}

/// The [`Sim`] for one experiment run: `sink.sim()` when a sink is
/// attached (arming the tracer under `--trace`), a plain `Sim::new()`
/// otherwise.
fn sink_sim(sink: Option<&StatsSink>) -> Sim {
    sink.map(|s| s.sim()).unwrap_or_default()
}

/// Sizing for a full (paper-scale) or quick (CI-scale) run.
#[derive(Clone, Copy, Debug)]
pub struct RunScale {
    /// IObench file size.
    pub file_bytes: u64,
    /// Random ops for FRR/FRU.
    pub random_ops: usize,
    /// Figure 12 file size.
    pub cpu_file_bytes: u64,
}

impl RunScale {
    /// The paper's sizes: 16 MB files.
    pub fn paper() -> RunScale {
        RunScale {
            file_bytes: 16 << 20,
            random_ops: 1024,
            cpu_file_bytes: 16 << 20,
        }
    }

    /// Reduced sizes for fast iteration and CI.
    pub fn quick() -> RunScale {
        RunScale {
            file_bytes: 4 << 20,
            random_ops: 256,
            cpu_file_bytes: 4 << 20,
        }
    }
}

/// Renders Figure 9 (the run-configuration matrix).
pub fn fig9_table() -> String {
    let mut t = Table::new(&[
        "",
        "cluster size",
        "rotdelay",
        "UFS version",
        "free behind",
        "write limit",
    ]);
    for c in Config::all() {
        let (cluster, rot, version, fb, wl) = c.figure9_row();
        t.row(vec![
            c.label().to_string(),
            cluster,
            format!("{rot}"),
            version.to_string(),
            if fb { "Yes" } else { "No" }.to_string(),
            if wl { "Yes" } else { "No" }.to_string(),
        ]);
    }
    t.render()
}

/// Raw Figure 10 rates: `rates[config][kind]` in KB/s.
pub type Fig10Data = Vec<Vec<f64>>;

/// Drives one Figure 10 cell (one config, one workload) on `sim`.
fn fig10_cell_on(sim: &Sim, config: Config, kind: IoKind, scale: RunScale) -> Throughput {
    let s = sim.clone();
    sim.run_until(async move {
        let w = paper_world(&s, config.tuning(), WorldOptions::default())
            .await
            .expect("world");
        let cache = w.cache.clone();
        run_iobench(
            &s,
            &w.fs,
            move |f: &ufs::UfsFile| cache.invalidate_vnode(f.id(), 0),
            "iobench.dat",
            kind,
            BenchOptions {
                file_bytes: scale.file_bytes,
                io_bytes: 8192,
                random_ops: scale.random_ops,
                seed: 0x1991,
            },
        )
        .await
        .expect("iobench")
    })
}

/// Runs one Figure 10 cell in a fresh world, capturing the run's metrics
/// snapshot into `sink` as `fig10/<config>/<kind>`. Public so tests can
/// assert on single-cell snapshots without paying for the whole matrix.
pub fn fig10_cell(
    config: Config,
    kind: IoKind,
    scale: RunScale,
    sink: Option<&StatsSink>,
) -> Throughput {
    let sim = sink_sim(sink);
    let t = fig10_cell_on(&sim, config, kind, scale);
    if let Some(sink) = sink {
        sink.push(format!("fig10/{}/{}", config.label(), kind.label()), &sim);
    }
    t
}

/// Runs the full Figure 10 matrix. Expensive (20 simulated runs), so the
/// cells fan out across the runner's worker threads.
pub fn fig10_run(scale: RunScale, runner: &Runner) -> Fig10Data {
    let mut plans = Vec::new();
    for c in Config::all() {
        for k in IoKind::all() {
            plans.push(RunPlan::new(
                format!("fig10/{}/{}", c.label(), k.label()),
                move |sim: &Sim| fig10_cell_on(sim, c, k, scale).kb_per_sec(),
            ));
        }
    }
    let rates = runner.run(plans);
    rates
        .chunks(IoKind::all().len())
        .map(|row| row.to_vec())
        .collect()
}

/// Renders Figure 10 from measured data.
pub fn fig10_table(data: &Fig10Data) -> String {
    let mut t = Table::new(&["", "FSR", "FSU", "FSW", "FRR", "FRU"]);
    for (i, c) in Config::all().iter().enumerate() {
        let mut row = vec![c.label().to_string()];
        row.extend(data[i].iter().map(|&r| kbs(r)));
        t.row(row);
    }
    t.render()
}

/// Renders Figure 11 (ratios A/B, A/C, A/D) from measured data.
pub fn fig11_table(data: &Fig10Data) -> String {
    let mut t = Table::new(&["", "FSR", "FSU", "FSW", "FRR", "FRU"]);
    for (i, label) in [(1usize, "A/B"), (2, "A/C"), (3, "A/D")] {
        let mut row = vec![label.to_string()];
        row.extend((0..5).map(|k| ratio(data[0][k], data[i][k])));
        t.row(row);
    }
    t.render()
}

/// Figure 12: CPU seconds to read a 16 MB file via mmap, new vs old UFS.
/// Returns `(rendered table, new_cpu_secs, old_cpu_secs)`.
pub fn fig12_run(scale: RunScale, runner: &Runner) -> (String, f64, f64) {
    let plan = |tuning: Tuning, id: &str| {
        RunPlan::new(format!("fig12/{id}"), move |sim: &Sim| {
            let s = sim.clone();
            sim.run_until(async move {
                let w = paper_world(&s, tuning, WorldOptions::default())
                    .await
                    .expect("world");
                mmap_read_cpu(&s, &w, "mmap.dat", scale.cpu_file_bytes)
                    .await
                    .expect("cpu bench")
                    .cpu
                    .as_secs_f64()
            })
        })
    };
    // The paper compares "4.1.1 UFS, no rotdelays" vs "4.1 UFS, rotdelays".
    let cpus = runner.run(vec![
        plan(Tuning::config_a(), "new"),
        plan(Tuning::config_d(), "old"),
    ]);
    let (new, old) = (cpus[0], cpus[1]);
    let mut t = Table::new(&["CPU", "Notes"]);
    let mb = scale.cpu_file_bytes >> 20;
    t.row(vec![
        format!("{new:.1}s"),
        format!("4.1.1 UFS, no rotdelays, {mb}MB mmap read"),
    ]);
    t.row(vec![
        format!("{old:.1}s"),
        format!("4.1 UFS, rotdelays, {mb}MB mmap read"),
    ]);
    (t.render(), new, old)
}

/// The allocator-contiguity study. Returns `(rendered, best_mean_bytes,
/// aged_mean_bytes)`.
pub fn extents_run(quick: bool, runner: &Runner) -> (String, f64, f64) {
    let (probe_mb, aged_target) = if quick { (4u64, 0.7) } else { (13u64, 0.88) };
    let probe2_mb = if quick { 4u64 } else { 16 };
    // Best case: fill a fresh partition with one file.
    let best_plan = RunPlan::new("extents/best", move |sim: &Sim| {
        let s = sim.clone();
        sim.run_until(async move {
            let w = paper_world(&s, Tuning::config_a(), WorldOptions::default())
                .await
                .expect("world");
            probe_extents(&w, "best.dat", probe_mb << 20)
                .await
                .expect("probe")
        })
    });
    // Worst case: fill the last 15% of a heavily fragmented partition.
    let worst_plan = RunPlan::new("extents/aged", move |sim: &Sim| {
        let s = sim.clone();
        sim.run_until(async move {
            let w = paper_world(&s, Tuning::config_a(), WorldOptions::default())
                .await
                .expect("world");
            age_filesystem(
                &w,
                AgingOptions {
                    target_fill: aged_target,
                    rounds: if quick { 2 } else { 5 },
                    seed: 0xA6E,
                },
            )
            .await
            .expect("aging");
            probe_extents(&w, "home/worst.dat", probe2_mb << 20)
                .await
                .expect("probe")
        })
    });
    let stats = runner.run(vec![best_plan, worst_plan]);
    let (best, worst) = (stats[0], stats[1]);
    let mut t = Table::new(&["case", "file", "extents", "mean extent", "max extent"]);
    for (label, st) in [("empty fs", &best), ("aged fs (last 15%)", &worst)] {
        t.row(vec![
            label.to_string(),
            format!("{:.1}MB", st.file_bytes as f64 / 1048576.0),
            format!("{}", st.extents),
            format!("{:.0}KB", st.mean_extent_bytes / 1024.0),
            format!("{}KB", st.max_extent_bytes / 1024),
        ]);
    }
    (t.render(), best.mean_extent_bytes, worst.mean_extent_bytes)
}

/// Knobs for the clustering-decay (aging) study, settable from the CLI.
#[derive(Clone, Copy, Debug)]
pub struct AgingParams {
    /// Churn rounds (the study emits `rounds + 1` decay points).
    pub rounds: usize,
    /// Target utilization each fill phase churns toward (`--utilization`).
    pub target_fill: f64,
    /// File-creation budget per churn round (`--age-ops`).
    pub ops_per_round: usize,
    /// extentfs inline-file threshold in bytes (`--inline-threshold`).
    pub inline_max: usize,
    /// Probe file size.
    pub probe_bytes: u64,
}

impl AgingParams {
    /// Paper-scale aging: the full 400 MB drive, 8 MB probes.
    pub fn paper() -> AgingParams {
        AgingParams {
            rounds: 4,
            target_fill: 0.85,
            ops_per_round: 4096,
            inline_max: 512,
            probe_bytes: 8 << 20,
        }
    }

    /// CI-scale aging: the small test world, 1 MB probes.
    pub fn quick() -> AgingParams {
        AgingParams {
            rounds: 2,
            target_fill: 0.70,
            ops_per_round: 512,
            inline_max: 512,
            probe_bytes: 1 << 20,
        }
    }
}

/// The fragmentation/aging study: churns a UFS and an extentfs volume
/// through the same create/delete mix and measures clustering decay —
/// probe-file mean extent length, contiguity fraction, and cold
/// sequential-read throughput — after each round. Returns the rendered
/// side-by-side table plus the raw per-file-system decay curves.
pub fn aging_run(
    params: AgingParams,
    quick: bool,
    runner: &Runner,
) -> (String, Vec<(&'static str, Vec<DecayPoint>)>) {
    let decay_opts = DecayOptions {
        rounds: params.rounds,
        target_fill: params.target_fill,
        ops_per_round: params.ops_per_round,
        probe_bytes: params.probe_bytes,
        seed: 0xA6E,
    };
    let ufs_plan = RunPlan::new("aging/ufs", move |sim: &Sim| {
        let s = sim.clone();
        sim.run_until(async move {
            let opts = WorldOptions {
                full_scale: !quick,
                ..WorldOptions::default()
            };
            let w = paper_world(&s, Tuning::config_a(), opts)
                .await
                .expect("world");
            clustering_decay(&s, &w, &decay_opts).await.expect("decay")
        })
    });
    let inline_max = params.inline_max;
    let ext_plan = RunPlan::new("aging/extentfs", move |sim: &Sim| {
        let s = sim.clone();
        sim.run_until(async move {
            let cpu = Cpu::new(&s);
            let (disk_params, cache_params, pageout_params, ninodes) = if quick {
                (
                    DiskParams::small_test(),
                    PageCacheParams::small_test(),
                    PageoutParams::small_test(),
                    256,
                )
            } else {
                (
                    DiskParams::sun0424(),
                    PageCacheParams::sparcstation_8mb(),
                    PageoutParams::sparcstation(),
                    2048,
                )
            };
            let disk: diskmodel::SharedDevice = std::rc::Rc::new(Disk::new(&s, disk_params));
            let cache = PageCache::new(&s, cache_params);
            let (_daemon, rx) = PageoutDaemon::spawn(&s, &cache, Some(cpu.clone()), pageout_params);
            std::mem::forget(rx);
            let mut fs_params = extentfs::ExtentFsParams::with_extent_blocks(15);
            fs_params.inline_max = inline_max;
            let fs = extentfs::ExtentFs::format(&s, &cpu, &cache, &disk, ninodes, fs_params)
                .expect("format");
            let w = ExtAgedWorld { fs, cache };
            clustering_decay(&s, &w, &decay_opts).await.expect("decay")
        })
    });
    let mut results = runner.run(vec![ufs_plan, ext_plan]);
    let ext = results.pop().expect("extentfs decay");
    let ufs = results.pop().expect("ufs decay");
    let mut t = Table::new(&[
        "round",
        "UFS mean ext",
        "UFS contig",
        "UFS seq rd",
        "extfs mean ext",
        "extfs contig",
        "extfs seq rd",
    ]);
    for (u, e) in ufs.iter().zip(&ext) {
        t.row(vec![
            format!("{}", u.round),
            format!("{:.0}KB", u.mean_extent_kb),
            format!("{:.2}", u.contiguity_fraction),
            kbs(u.seq_read_kb_s),
            format!("{:.0}KB", e.mean_extent_kb),
            format!("{:.2}", e.contiguity_fraction),
            kbs(e.seq_read_kb_s),
        ]);
    }
    (t.render(), vec![("ufs", ufs), ("extentfs", ext)])
}

/// MusBus comparison (should improve "only slightly"). Returns
/// `(rendered, ratio_old_over_new)`.
pub fn musbus_run(runner: &Runner) -> (String, f64) {
    let plan = |tuning: Tuning, id: &str| {
        RunPlan::new(format!("musbus/{id}"), move |sim: &Sim| {
            let s = sim.clone();
            sim.run_until(async move {
                let w = paper_world(&s, tuning, WorldOptions::default())
                    .await
                    .expect("world");
                run_musbus(&s, &w, MusbusOptions::default())
                    .await
                    .expect("musbus")
            })
        })
    };
    let results = runner.run(vec![
        plan(Tuning::config_a(), "A"),
        plan(Tuning::config_d(), "D"),
    ]);
    let (new, old) = (results[0], results[1]);
    let ratio = old.mean_iteration.as_secs_f64() / new.mean_iteration.as_secs_f64();
    let mut t = Table::new(&["config", "mean script iteration", "bytes moved"]);
    t.row(vec![
        "A (clustered)".into(),
        format!("{}", new.mean_iteration),
        format!("{}", new.bytes_moved),
    ]);
    t.row(vec![
        "D (stock 4.1)".into(),
        format!("{}", old.mean_iteration),
        format!("{}", old.bytes_moved),
    ]);
    (t.render(), ratio)
}

// ---- ablations ----

/// World with a customized drive (for the driver-clustering and
/// track-buffer ablations).
async fn custom_disk_world(sim: &Sim, tuning: Tuning, disk_params: DiskParams) -> ufs::World {
    let mut params = ufs::UfsParams::with_tuning(tuning);
    params.maxbpg = None;
    ufs_build(sim, disk_params, params).await
}

async fn ufs_build(sim: &Sim, disk_params: DiskParams, params: ufs::UfsParams) -> ufs::World {
    ufs::build_world(
        sim,
        disk_params,
        PageCacheParams::sparcstation_8mb(),
        ufs::MkfsOptions::sun0424(),
        params,
    )
    .await
    .expect("world")
}

fn bench_opts(scale: RunScale) -> BenchOptions {
    BenchOptions {
        file_bytes: scale.file_bytes,
        io_bytes: 8192,
        random_ops: scale.random_ops,
        seed: 0x1991,
    }
}

async fn measure_ufs(sim: &Sim, w: &ufs::World, kind: IoKind, scale: RunScale) -> f64 {
    let cache = w.cache.clone();
    run_iobench(
        sim,
        &w.fs,
        move |f: &ufs::UfsFile| cache.invalidate_vnode(f.id(), 0),
        "abl.dat",
        kind,
        bench_opts(scale),
    )
    .await
    .expect("iobench")
    .kb_per_sec()
}

/// The rejected "file system tuning" alternative (rotdelay 0, still
/// block-at-a-time) and the rejected "driver clustering" alternative, vs
/// the shipped configurations. Returns the rendered comparison.
pub fn rejected_alternatives_run(scale: RunScale, runner: &Runner) -> String {
    let plan = |tuning: Tuning, coalesce: Option<u32>, kind: IoKind, id: &str| {
        RunPlan::new(
            format!("alternatives/{id}/{}", kind.label()),
            move |sim: &Sim| {
                let s = sim.clone();
                sim.run_until(async move {
                    let dp = DiskParams {
                        coalesce_limit: coalesce,
                        ..DiskParams::sun0424()
                    };
                    let w = custom_disk_world(&s, tuning, dp).await;
                    measure_ufs(&s, &w, kind, scale).await
                })
            },
        )
    };
    let rows = [
        ("B: stock + heuristics", "B", Tuning::config_b(), None),
        (
            "tuning only (rotdelay=0)",
            "tuning-only",
            Tuning::tuning_only(),
            None,
        ),
        (
            "driver clustering (rotdelay=0)",
            "driver-clustering",
            Tuning::tuning_only(),
            Some(112),
        ),
        ("A: fs clustering", "A", Tuning::config_a(), None),
    ];
    let mut plans = Vec::new();
    for (_, id, tuning, coalesce) in rows {
        plans.push(plan(tuning, coalesce, IoKind::SeqRead, id));
        plans.push(plan(tuning, coalesce, IoKind::SeqWrite, id));
    }
    let rates = runner.run(plans);
    let mut t = Table::new(&["alternative", "FSR", "FSW"]);
    for (i, (label, ..)) in rows.into_iter().enumerate() {
        t.row(vec![
            label.to_string(),
            kbs(rates[2 * i]),
            kbs(rates[2 * i + 1]),
        ]);
    }
    t.render()
}

/// Clustered UFS vs the extent-based file system at several user-chosen
/// extent sizes (the title claim). Returns the rendered comparison.
pub fn extentfs_comparison_run(scale: RunScale, runner: &Runner) -> String {
    let plan_extentfs = |extent_blocks: u32, kind: IoKind| {
        RunPlan::new(
            format!("extentfs/{extent_blocks}blk/{}", kind.label()),
            move |sim: &Sim| {
                let s = sim.clone();
                sim.run_until(async move {
                    let cpu = Cpu::new(&s);
                    let disk: diskmodel::SharedDevice =
                        std::rc::Rc::new(Disk::new(&s, DiskParams::sun0424()));
                    let cache = PageCache::new(&s, PageCacheParams::sparcstation_8mb());
                    let (_daemon, rx) = PageoutDaemon::spawn(
                        &s,
                        &cache,
                        Some(cpu.clone()),
                        PageoutParams::sparcstation(),
                    );
                    std::mem::forget(rx);
                    let fs = extentfs::ExtentFs::format(
                        &s,
                        &cpu,
                        &cache,
                        &disk,
                        256,
                        extentfs::ExtentFsParams::with_extent_blocks(extent_blocks),
                    )
                    .expect("format");
                    let cache2 = cache.clone();
                    run_iobench(
                        &s,
                        &fs,
                        move |f: &extentfs::ExtFile| cache2.invalidate_vnode(f.id(), 0),
                        "ext.dat",
                        kind,
                        bench_opts(scale),
                    )
                    .await
                    .expect("iobench")
                    .kb_per_sec()
                })
            },
        )
    };
    let plan_ufs = |tuning: Tuning, kind: IoKind| {
        RunPlan::new(
            format!("extentfs/ufs-A/{}", kind.label()),
            move |sim: &Sim| {
                let s = sim.clone();
                sim.run_until(async move {
                    let w = paper_world(&s, tuning, WorldOptions::default())
                        .await
                        .expect("world");
                    measure_ufs(&s, &w, kind, scale).await
                })
            },
        )
    };
    let rows = [
        ("extentfs, 8KB extents (too small)", 1u32),
        ("extentfs, 56KB extents", 7),
        ("extentfs, 120KB extents", 15),
    ];
    let mut plans = Vec::new();
    for (_, blocks) in rows {
        plans.push(plan_extentfs(blocks, IoKind::SeqRead));
        plans.push(plan_extentfs(blocks, IoKind::SeqWrite));
    }
    plans.push(plan_ufs(Tuning::config_a(), IoKind::SeqRead));
    plans.push(plan_ufs(Tuning::config_a(), IoKind::SeqWrite));
    let rates = runner.run(plans);
    let mut t = Table::new(&["file system", "FSR", "FSW"]);
    for (i, (label, _)) in rows.into_iter().enumerate() {
        t.row(vec![
            label.to_string(),
            kbs(rates[2 * i]),
            kbs(rates[2 * i + 1]),
        ]);
    }
    t.row(vec![
        "clustered UFS (120KB clusters)".to_string(),
        kbs(rates[6]),
        kbs(rates[7]),
    ]);
    t.render()
}

/// Write-limit sweep: FRU throughput and writer-memory footprint with no
/// limit vs several limits (the fairness tradeoff). Returns the rendered
/// table.
pub fn write_limit_sweep_run(scale: RunScale, runner: &Runner) -> String {
    let plan = |limit: Option<u32>, id: &str| {
        RunPlan::new(format!("write-limit/{id}"), move |sim: &Sim| {
            let s = sim.clone();
            sim.run_until(async move {
                let tuning = Tuning {
                    write_limit: limit,
                    ..Tuning::config_a()
                };
                let w = paper_world(&s, tuning, WorldOptions::default())
                    .await
                    .expect("world");
                let rate = measure_ufs(&s, &w, IoKind::RandUpdate, scale).await;
                let stalls = w.cache.stats().alloc_stalls;
                (rate, stalls)
            })
        })
    };
    let rows = [
        ("none (config D style)", "none", None),
        ("240KB (shipped)", "240KB", Some(240 * 1024)),
        ("24KB (too small)", "24KB", Some(24 * 1024)),
    ];
    let results = runner.run(rows.iter().map(|&(_, id, limit)| plan(limit, id)).collect());
    let mut t = Table::new(&["write limit", "FRU KB/s", "page alloc stalls"]);
    for ((label, ..), (rate, stalls)) in rows.into_iter().zip(results) {
        t.row(vec![label.to_string(), kbs(rate), format!("{stalls}")]);
    }
    t.render()
}

/// Free-behind cache-survival experiment: a large sequential read streams
/// through memory while another "user" keeps a working set warm; measures
/// how much of that working set survives and how hard the pageout daemon
/// had to work. Returns `(rendered, survivors_with, survivors_without)`.
pub fn free_behind_run(scale: RunScale, runner: &Runner) -> (String, usize, usize) {
    let plan = |free_behind: bool| -> RunPlan<(usize, u64, u64)> {
        let id = format!("free-behind/{}", if free_behind { "on" } else { "off" });
        RunPlan::new(id, move |sim: &Sim| {
            let s = sim.clone();
            sim.run_until(async move {
                let tuning = Tuning {
                    free_behind,
                    ..Tuning::config_a()
                };
                let w = paper_world(&s, tuning, WorldOptions::default())
                    .await
                    .expect("world");
                // Resident working set: a 2 MB file, fully read.
                let hot = w.fs.create("hot.dat").await.expect("create");
                let payload = vec![1u8; 8192];
                for i in 0..256u64 {
                    use vfs::Vnode as _;
                    hot.write(i * 8192, &payload, vfs::AccessMode::Copy)
                        .await
                        .expect("write");
                }
                {
                    use vfs::Vnode as _;
                    hot.fsync().await.expect("fsync");
                    hot.read(0, 2 << 20, vfs::AccessMode::Copy)
                        .await
                        .expect("read");
                }
                let hot_id = {
                    use vfs::Vnode as _;
                    hot.id()
                };
                let before = w.cache.resident_of(hot_id);
                assert!(before > 0);
                // The "other user": periodically touches the working set, as an
                // interactive process would. Touching refreshes reference bits;
                // the two-handed clock only evicts pages that stay untouched
                // for a whole handspread.
                let stop = std::rc::Rc::new(std::cell::Cell::new(false));
                {
                    let cache = w.cache.clone();
                    let stop = std::rc::Rc::clone(&stop);
                    let s2 = s.clone();
                    s.spawn(async move {
                        while !stop.get() {
                            for i in 0..256u64 {
                                if let Some(id) = cache.lookup(pagecache::PageKey {
                                    vnode: hot_id,
                                    offset: i * 8192,
                                }) {
                                    cache.set_referenced(id);
                                }
                            }
                            s2.sleep(simkit::SimDuration::from_millis(600)).await;
                        }
                    });
                }
                // The streaming read: bigger than memory.
                let cache = w.cache.clone();
                run_iobench(
                    &s,
                    &w.fs,
                    move |f: &ufs::UfsFile| cache.invalidate_vnode(f.id(), 0),
                    "stream.dat",
                    IoKind::SeqRead,
                    bench_opts(scale),
                )
                .await
                .expect("stream");
                stop.set(true);
                let survivors = w.cache.resident_of(hot_id);
                let scans = w.daemon.stats().scanned;
                let fb = w.fs.stats().free_behinds;
                (survivors, scans, fb)
            })
        })
    };
    let results = runner.run(vec![plan(true), plan(false)]);
    let (with_fb, scans_with, fb_count) = results[0];
    let (without_fb, scans_without, _) = results[1];
    let mut t = Table::new(&[
        "free behind",
        "hot pages surviving",
        "daemon pages scanned",
        "pages freed behind",
    ]);
    t.row(vec![
        "on".into(),
        format!("{with_fb}"),
        format!("{scans_with}"),
        format!("{fb_count}"),
    ]);
    t.row(vec![
        "off".into(),
        format!("{without_fb}"),
        format!("{scans_without}"),
        "0".into(),
    ]);
    (t.render(), with_fb, without_fb)
}

/// Multi-stream fairness: `streams` concurrent sequential streams —
/// alternating writers and readers — compete for one config-A mount. The
/// labelled `…{stream=N}` metrics attribute disk traffic, write-throttle
/// stalls, and achieved write-cluster sizes to each stream; the per-stream
/// disk columns (plus the untagged stream-0 remainder: metadata and
/// cleaner traffic) sum to the global `disk.sectors_*` counters. Returns
/// the rendered table.
pub fn streams_run(streams: u32, scale: RunScale, runner: &Runner) -> String {
    // One simulated run; the whole table (which reads per-stream metrics
    // off the sim's registry) is rendered inside the plan because the
    // `!Send` sim cannot leave its worker thread — only the finished
    // String crosses back.
    let plan = RunPlan::new(format!("streams/{streams}"), move |sim: &Sim| {
        let s = sim.clone();
        let per_stream_bytes = (scale.file_bytes / 4).max(512 * 1024);
        let runs = sim.run_until(async move {
            let w = paper_world(&s, Tuning::config_a(), WorldOptions::default())
                .await
                .expect("world");
            let cache = w.cache.clone();
            run_streams(
                &s,
                &w.fs,
                move |f: &ufs::UfsFile| cache.invalidate_vnode(f.id(), 0),
                StreamsOptions {
                    streams,
                    file_bytes: per_stream_bytes,
                    io_bytes: 8192,
                },
            )
            .await
            .expect("streams")
        });
        let st = sim.stats();
        let per = |base: &str| -> std::collections::BTreeMap<u32, u64> {
            st.stream_counter_values(base).into_iter().collect()
        };
        let rd = per("disk.sectors_read");
        let wr = per("disk.sectors_written");
        let stalls = per("core.throttle_stalls");
        // 512-byte sectors → KB.
        let sector_kb = |m: &std::collections::BTreeMap<u32, u64>, stream: u32| {
            m.get(&stream).copied().unwrap_or(0) / 2
        };
        let mut t = Table::new(&[
            "stream",
            "file",
            "role",
            "KB/s",
            "disk rd KB",
            "disk wr KB",
            "stalls",
            "avg wr cluster",
        ]);
        for r in &runs {
            let avg = st
                .histogram_totals(&simkit::stats::StatsRegistry::stream_name(
                    "iopath.cluster_write_blocks",
                    r.stream,
                ))
                .filter(|&(n, _)| n > 0)
                .map(|(n, sum)| format!("{:.1}", sum as f64 / n as f64))
                .unwrap_or_else(|| "-".into());
            t.row(vec![
                format!("{}", r.stream),
                r.name.clone(),
                r.role.label().to_string(),
                kbs(r.kb_per_sec()),
                format!("{}", sector_kb(&rd, r.stream)),
                format!("{}", sector_kb(&wr, r.stream)),
                format!("{}", stalls.get(&r.stream).copied().unwrap_or(0)),
                avg,
            ]);
        }
        t.row(vec![
            "0".into(),
            "(untagged)".into(),
            "meta".into(),
            "-".into(),
            format!("{}", sector_kb(&rd, 0)),
            format!("{}", sector_kb(&wr, 0)),
            format!("{}", stalls.get(&0).copied().unwrap_or(0)),
            "-".into(),
        ]);
        t.render()
    });
    runner.run(vec![plan]).remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_renders_four_rows() {
        let s = fig9_table();
        assert_eq!(s.lines().count(), 6);
        assert!(s.contains("120KB"));
        assert!(s.contains("SunOS 4.1.1"));
    }
}
