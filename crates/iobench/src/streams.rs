//! Multi-stream fairness workload.
//!
//! N concurrent sequential streams — alternating writers and readers —
//! share one mount. Every open file carries its own [`vfs::StreamId`], so
//! the labelled registry metrics (`disk.sectors_*{stream=N}`,
//! `core.throttle_stalls{stream=N}`, `iopath.cluster_*_blocks{stream=N}`)
//! attribute the disk's bandwidth, the throttle's stalls and the achieved
//! cluster sizes to each competing stream. This is the measurement behind
//! the paper's fairness argument: the per-file write limit is what keeps
//! one fat writer from starving everyone else.

use simkit::{Sim, SimDuration};
use vfs::{AccessMode, FileSystem, FsResult, Vnode};

/// What one stream does during the measured phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StreamRole {
    /// Sequential writer into a fresh (empty) file, then fsync.
    Writer,
    /// Sequential reader of a prepared, cache-cold file.
    Reader,
}

impl StreamRole {
    /// Streams alternate writer/reader, starting with a writer.
    pub fn of(index: u32) -> StreamRole {
        if index.is_multiple_of(2) {
            StreamRole::Writer
        } else {
            StreamRole::Reader
        }
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            StreamRole::Writer => "writer",
            StreamRole::Reader => "reader",
        }
    }
}

/// Workload sizing.
#[derive(Clone, Copy, Debug)]
pub struct StreamsOptions {
    /// Number of concurrent streams.
    pub streams: u32,
    /// Bytes each stream moves.
    pub file_bytes: u64,
    /// Per-call transfer size.
    pub io_bytes: usize,
}

impl Default for StreamsOptions {
    fn default() -> Self {
        StreamsOptions {
            streams: 4,
            file_bytes: 8 << 20,
            io_bytes: 8192,
        }
    }
}

/// One stream's measured outcome.
#[derive(Clone, Debug)]
pub struct StreamRun {
    /// The file the stream worked on.
    pub name: String,
    /// The stream label its requests carried (`…{stream=N}`).
    pub stream: u32,
    /// Writer or reader.
    pub role: StreamRole,
    /// Bytes moved during the measured phase.
    pub bytes: u64,
    /// Virtual time the stream's phase took.
    pub elapsed: SimDuration,
}

impl StreamRun {
    /// The stream's individual transfer rate.
    pub fn kb_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.bytes as f64 / 1024.0 / self.elapsed.as_secs_f64()
    }
}

/// Runs `opts.streams` concurrent streams against `fs` and returns each
/// stream's outcome, in stream-index order.
///
/// Preparation (creating every file up front — which fixes the stream-id
/// assignment order — and seeding + cache-invalidating the readers' files)
/// is excluded from the measurement.
pub async fn run_streams<F>(
    sim: &Sim,
    fs: &F,
    invalidate: impl Fn(&F::File),
    opts: StreamsOptions,
) -> FsResult<Vec<StreamRun>>
where
    F: FileSystem,
    F::File: 'static,
{
    let payload: Vec<u8> = (0..opts.io_bytes).map(|i| (i % 251) as u8).collect();
    let nio = (opts.file_bytes / opts.io_bytes as u64) as usize;

    // ---- preparation (unmeasured) ----
    let mut files = Vec::new();
    for i in 0..opts.streams {
        let name = format!("stream{i}.dat");
        let role = StreamRole::of(i);
        let f = fs.create(&name).await?;
        if role == StreamRole::Reader {
            for b in 0..nio {
                f.write(b as u64 * opts.io_bytes as u64, &payload, AccessMode::Copy)
                    .await?;
            }
            f.fsync().await?;
            invalidate(&f);
        }
        files.push((name, role, f));
    }

    // ---- measured phase: all streams at once ----
    let mut handles = Vec::new();
    for (name, role, f) in files {
        let s = sim.clone();
        let payload = payload.clone();
        let io_bytes = opts.io_bytes;
        handles.push(sim.spawn(async move {
            let t0 = s.now();
            let bytes = match role {
                StreamRole::Writer => {
                    for b in 0..nio {
                        f.write(b as u64 * io_bytes as u64, &payload, AccessMode::Copy)
                            .await
                            .expect("stream write");
                    }
                    f.fsync().await.expect("stream fsync");
                    nio as u64 * io_bytes as u64
                }
                StreamRole::Reader => {
                    let mut buf = vec![0u8; io_bytes];
                    let mut total = 0u64;
                    for b in 0..nio {
                        total += f
                            .read_into(b as u64 * io_bytes as u64, &mut buf, AccessMode::Copy)
                            .await
                            .expect("stream read") as u64;
                    }
                    total
                }
            };
            StreamRun {
                name,
                stream: f.stream().as_u32(),
                role,
                bytes,
                elapsed: s.now().duration_since(t0),
            }
        }));
    }
    let mut out = Vec::new();
    for h in handles {
        out.push(h.await);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{paper_world, Config, WorldOptions};

    #[test]
    fn streams_interleave_and_tag() {
        let sim = Sim::new();
        let s = sim.clone();
        let runs = sim.run_until(async move {
            let opts = WorldOptions {
                full_scale: false,
                ..WorldOptions::default()
            };
            let w = paper_world(&s, Config::A.tuning(), opts).await.unwrap();
            let cache = w.cache.clone();
            run_streams(
                &s,
                &w.fs,
                move |f: &ufs::UfsFile| cache.invalidate_vnode(vfs::Vnode::id(f), 0),
                StreamsOptions {
                    streams: 4,
                    file_bytes: 512 * 1024,
                    io_bytes: 8192,
                },
            )
            .await
            .unwrap()
        });
        assert_eq!(runs.len(), 4);
        // Every stream moved its bytes and carries a distinct non-zero id.
        let mut ids: Vec<u32> = runs.iter().map(|r| r.stream).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "stream ids must be distinct: {runs:?}");
        assert!(ids.iter().all(|&i| i > 0), "0 is the untagged stream");
        for r in &runs {
            assert_eq!(r.bytes, 512 * 1024, "{}", r.name);
            assert!(r.kb_per_sec() > 0.0);
        }
        assert_eq!(runs[0].role, StreamRole::Writer);
        assert_eq!(runs[1].role, StreamRole::Reader);
        // The disk saw tagged traffic for both roles.
        let st = sim.stats();
        assert!(st.stream_counter_sum("disk.sectors_read") > 0);
        assert!(st.stream_counter_sum("disk.sectors_written") > 0);
    }
}
