//! The `readahead` experiment: strided reads vs prefetch policy.
//!
//! The paper's predictor speculates exactly one cluster ahead of a
//! sequential stream; a strided scan (fixed records separated by fixed
//! gaps — scientific codes, column scans) defeats it on every record
//! boundary. This experiment sweeps stride × record size × policy
//! (`off`, the paper's `fixed`-one-cluster, and the `adaptive`
//! distance-ramping stride detector) over clustered UFS and extentfs on a
//! striped array, and reports throughput, prefetch accuracy, and the
//! wasted-read fraction per cell.

use clufs::{PrefetchPolicy, Tuning};
use diskmodel::DiskParams;
use pagecache::{PageCache, PageCacheParams, PageoutDaemon, PageoutParams};
use simkit::{Cpu, Sim};
use vfs::Vnode;
use volmgr::VolumeSpec;

use crate::configs::{paper_world, WorldOptions};
use crate::experiments::RunScale;
use crate::iobench::{run_strided_read, StrideOptions};
use crate::report::{kbs, ratio, Table};
use crate::runner::{RunPlan, Runner};

/// The stride × record cells, in KB. The first row is a plain sequential
/// scan (stride == record) — the sanity cell where `adaptive` must match
/// `fixed`.
pub const CELLS: [(u64, u64); 5] = [(8, 8), (64, 8), (256, 8), (64, 32), (256, 32)];

/// The policy columns, in table order.
pub const POLICIES: [PrefetchPolicy; 3] = [
    PrefetchPolicy::Off,
    PrefetchPolicy::Fixed,
    PrefetchPolicy::Adaptive,
];

/// One measured cell: throughput plus the run's prefetch counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RaCell {
    /// Measured strided-read rate, KB/s.
    pub kbs: f64,
    /// `io.prefetch_issued` — speculative blocks sent to the device.
    pub issued: u64,
    /// `io.prefetch_hits` — prefetched pages later claimed by a demand
    /// access (pages are blocks, so this shares units with `issued`).
    pub hits: u64,
    /// `io.prefetch_wasted_bytes` — prefetched bytes recycled or
    /// invalidated without ever being claimed.
    pub wasted: u64,
}

impl RaCell {
    /// Fraction of speculative blocks that a demand access later claimed.
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.hits as f64 / self.issued as f64
    }

    /// Fraction of speculative bytes read for nothing.
    pub fn wasted_fraction(&self) -> f64 {
        let issued_bytes = self.issued * 8192;
        if issued_bytes == 0 {
            return 0.0;
        }
        self.wasted as f64 / issued_bytes as f64
    }
}

fn pct(f: f64) -> String {
    format!("{:.0}%", f * 100.0)
}

/// `-` for cells where no prefetch can be issued (`off`).
fn pct_or_dash(cell: &RaCell) -> String {
    if cell.issued == 0 {
        "-".to_string()
    } else {
        pct(cell.accuracy())
    }
}

fn stride_opts(scale: RunScale, stride_kb: u64, record_kb: u64) -> StrideOptions {
    StrideOptions {
        file_bytes: scale.file_bytes,
        record_bytes: record_kb * 1024,
        stride_bytes: stride_kb * 1024,
        io_bytes: 8192,
    }
}

/// Reads the run's prefetch counters off its (fresh, per-run) registry,
/// and records the measured throughput there so the stats JSON carries it
/// (the CI smoke job compares policies straight off the document).
fn counters(sim: &Sim, kbs: f64) -> RaCell {
    let stats = sim.stats();
    stats.counter("bench.kb_per_s").add(kbs as u64);
    RaCell {
        kbs,
        issued: stats.counter("io.prefetch_issued").get(),
        hits: stats.counter("io.prefetch_hits").get(),
        wasted: stats.counter("io.prefetch_wasted_bytes").get(),
    }
}

/// One clustered-UFS cell (config A placement, selected policy).
fn ufs_cell(
    sim: &Sim,
    policy: PrefetchPolicy,
    stride_kb: u64,
    record_kb: u64,
    scale: RunScale,
) -> RaCell {
    let s = sim.clone();
    let kbs = sim.run_until(async move {
        let tuning = Tuning {
            prefetch: policy,
            ..Tuning::config_a()
        };
        let w = paper_world(&s, tuning, WorldOptions::default())
            .await
            .expect("world");
        let cache = w.cache.clone();
        run_strided_read(
            &s,
            &w.fs,
            move |f: &ufs::UfsFile| cache.invalidate_vnode(f.id(), 0),
            "stride.dat",
            stride_opts(scale, stride_kb, record_kb),
        )
        .await
        .expect("strided read")
        .kb_per_sec()
    });
    counters(sim, kbs)
}

/// One extentfs-on-RAID cell (120 KB extents on a two-way stripe).
fn ext_cell(
    sim: &Sim,
    policy: PrefetchPolicy,
    stride_kb: u64,
    record_kb: u64,
    scale: RunScale,
) -> RaCell {
    let s = sim.clone();
    let kbs = sim.run_until(async move {
        let cpu = Cpu::new(&s);
        let spec = VolumeSpec::parse("raid0:2:64k").expect("built-in spec");
        let disk = volmgr::build(&s, &spec, DiskParams::sun0424());
        let cache = PageCache::new(&s, PageCacheParams::sparcstation_8mb());
        let (_daemon, rx) =
            PageoutDaemon::spawn(&s, &cache, Some(cpu.clone()), PageoutParams::sparcstation());
        std::mem::forget(rx);
        let mut params = extentfs::ExtentFsParams::with_extent_blocks(15);
        params.prefetch = policy;
        let fs = extentfs::ExtentFs::format(&s, &cpu, &cache, &disk, 256, params).expect("format");
        let cache2 = cache.clone();
        run_strided_read(
            &s,
            &fs,
            move |f: &extentfs::ExtFile| cache2.invalidate_vnode(f.id(), 0),
            "stride.dat",
            stride_opts(scale, stride_kb, record_kb),
        )
        .await
        .expect("strided read")
        .kb_per_sec()
    });
    counters(sim, kbs)
}

/// Raw sweep results: `cells[fs][cell][policy]`, fs 0 = UFS, 1 = extentfs.
pub type RaData = Vec<Vec<Vec<RaCell>>>;

/// Runs the full sweep (2 file systems × 5 cells × 3 policies = 30
/// independent runs) across the runner's workers.
pub fn readahead_data(scale: RunScale, runner: &Runner) -> RaData {
    let mut plans = Vec::new();
    for fs in 0..2usize {
        for (stride_kb, record_kb) in CELLS {
            for policy in POLICIES {
                let fs_label = if fs == 0 { "ufs-A" } else { "ext-raid0" };
                plans.push(RunPlan::new(
                    format!(
                        "readahead/{fs_label}/{}/s{stride_kb}/r{record_kb}",
                        policy.label()
                    ),
                    move |sim: &Sim| {
                        if fs == 0 {
                            ufs_cell(sim, policy, stride_kb, record_kb, scale)
                        } else {
                            ext_cell(sim, policy, stride_kb, record_kb, scale)
                        }
                    },
                ));
            }
        }
    }
    let flat = runner.run(plans);
    flat.chunks(POLICIES.len())
        .collect::<Vec<_>>()
        .chunks(CELLS.len())
        .map(|fs| fs.iter().map(|c| c.to_vec()).collect())
        .collect()
}

/// Renders the three tables: throughput vs stride, prefetch accuracy, and
/// wasted-read fraction.
pub fn readahead_tables(data: &RaData) -> String {
    let mut thr = Table::new(&[
        "file system / pattern",
        "off",
        "fixed-1",
        "adaptive",
        "adaptive/fixed",
    ]);
    let mut acc = Table::new(&["file system / pattern", "fixed-1", "adaptive"]);
    let mut waste = Table::new(&["file system / pattern", "fixed-1", "adaptive"]);
    for (fs, fs_label) in ["clustered UFS", "extentfs raid0"].iter().enumerate() {
        for (ci, (stride_kb, record_kb)) in CELLS.into_iter().enumerate() {
            let label = if stride_kb == record_kb {
                format!("{fs_label}, sequential")
            } else {
                format!("{fs_label}, {record_kb}KB every {stride_kb}KB")
            };
            let row = &data[fs][ci];
            thr.row(vec![
                label.clone(),
                kbs(row[0].kbs),
                kbs(row[1].kbs),
                kbs(row[2].kbs),
                ratio(row[2].kbs, row[1].kbs),
            ]);
            acc.row(vec![
                label.clone(),
                pct_or_dash(&row[1]),
                pct_or_dash(&row[2]),
            ]);
            waste.row(vec![
                label,
                pct(row[1].wasted_fraction()),
                pct(row[2].wasted_fraction()),
            ]);
        }
    }
    format!(
        "Strided read throughput (KB/s):\n{}\nPrefetch accuracy (claimed/issued blocks):\n{}\nWasted-read fraction (unclaimed/issued bytes):\n{}",
        thr.render(),
        acc.render(),
        waste.render()
    )
}

/// The `iobench readahead` experiment: runs the sweep and renders it.
pub fn readahead_run(scale: RunScale, runner: &Runner) -> String {
    readahead_tables(&readahead_data(scale, runner))
}

/// One user-selected cell (`--readahead`/`--stride`/`--record-size`):
/// both file systems at one pattern under one policy.
pub fn readahead_cell_run(
    policy: PrefetchPolicy,
    stride_kb: u64,
    record_kb: u64,
    scale: RunScale,
    runner: &Runner,
) -> String {
    let plans = (0..2usize)
        .map(|fs| {
            let fs_label = if fs == 0 { "ufs-A" } else { "ext-raid0" };
            RunPlan::new(
                format!(
                    "readahead/{fs_label}/{}/s{stride_kb}/r{record_kb}",
                    policy.label()
                ),
                move |sim: &Sim| {
                    if fs == 0 {
                        ufs_cell(sim, policy, stride_kb, record_kb, scale)
                    } else {
                        ext_cell(sim, policy, stride_kb, record_kb, scale)
                    }
                },
            )
        })
        .collect();
    let cells = runner.run(plans);
    let mut t = Table::new(&[
        "file system",
        "KB/s",
        "issued blks",
        "hit blks",
        "accuracy",
        "wasted",
    ]);
    for (fs, cell) in ["clustered UFS", "extentfs raid0"].iter().zip(&cells) {
        t.row(vec![
            fs.to_string(),
            kbs(cell.kbs),
            cell.issued.to_string(),
            cell.hits.to_string(),
            pct_or_dash(cell),
            pct(cell.wasted_fraction()),
        ]);
    }
    format!(
        "{record_kb}KB records every {stride_kb}KB, policy {}:\n{}",
        policy.label(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_fixed_on_strided_ufs() {
        // 8 KB records every 256 KB: the stride outruns even a 120 KB
        // cluster, so the paper's predictor never hits and the stride
        // detector's record prefetch is pure profit.
        let scale = RunScale::quick();
        let fixed = ufs_cell(&Sim::new(), PrefetchPolicy::Fixed, 256, 8, scale);
        let adaptive = ufs_cell(&Sim::new(), PrefetchPolicy::Adaptive, 256, 8, scale);
        assert!(
            adaptive.kbs >= 1.2 * fixed.kbs,
            "adaptive {:.0} KB/s should beat fixed {:.0} KB/s by 1.2x",
            adaptive.kbs,
            fixed.kbs
        );
        assert!(
            adaptive.accuracy() > 0.3,
            "stride detector should land a useful share of its guesses: {:?}",
            adaptive
        );
    }

    #[test]
    fn sequential_cell_matches_fixed_predictor() {
        // On a pure sequential scan the adaptive engine must not lose to
        // the paper's predictor.
        let scale = RunScale::quick();
        let fixed = ufs_cell(&Sim::new(), PrefetchPolicy::Fixed, 8, 8, scale);
        let adaptive = ufs_cell(&Sim::new(), PrefetchPolicy::Adaptive, 8, 8, scale);
        assert!(
            adaptive.kbs >= 0.95 * fixed.kbs,
            "adaptive {:.0} KB/s regressed sequential vs fixed {:.0} KB/s",
            adaptive.kbs,
            fixed.kbs
        );
    }

    #[test]
    fn extentfs_strided_cell_improves_and_counts() {
        let scale = RunScale::quick();
        let fixed = ext_cell(&Sim::new(), PrefetchPolicy::Fixed, 256, 32, scale);
        let adaptive = ext_cell(&Sim::new(), PrefetchPolicy::Adaptive, 256, 32, scale);
        assert!(adaptive.issued > 0, "adaptive issued no prefetch");
        assert!(
            adaptive.kbs >= fixed.kbs,
            "adaptive {:.0} KB/s lost to fixed {:.0} KB/s",
            adaptive.kbs,
            fixed.kbs
        );
    }

    #[test]
    fn off_policy_issues_nothing() {
        let cell = ufs_cell(&Sim::new(), PrefetchPolicy::Off, 64, 8, RunScale::quick());
        assert_eq!(cell.issued, 0);
        assert_eq!(cell.hits, 0);
    }
}
