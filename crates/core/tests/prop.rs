//! Property-based tests for the clustering policy engines.

use clufs::{AdaptiveRa, DelayedWrite, ReadAhead, WriteAction, MAX_DISTANCE};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Drives a full sequential scan of an `eof`-block file through the
/// read-ahead engine and returns every block read (sync or async) and how
/// many I/O operations were issued.
fn scan_file(maxcontig: u32, eof: u64) -> (BTreeSet<u64>, usize) {
    let mut ra = ReadAhead::new();
    let mut resident: BTreeSet<u64> = BTreeSet::new();
    let mut ios = 0usize;
    let cluster_len = |lbn: u64| -> u32 {
        if lbn >= eof {
            0
        } else {
            maxcontig.min((eof - lbn) as u32)
        }
    };
    let mut read_blocks = BTreeSet::new();
    for lbn in 0..eof {
        let cached = resident.contains(&lbn);
        let plan = ra.on_access(lbn, cached, cluster_len, 0);
        for run in [plan.sync, plan.readahead].into_iter().flatten() {
            ios += 1;
            for b in run.lbn..run.lbn + run.blocks as u64 {
                assert!(
                    read_blocks.insert(b),
                    "block {b} read twice during a sequential scan (maxcontig={maxcontig})"
                );
                resident.insert(b);
            }
        }
        assert!(
            resident.contains(&lbn),
            "block {lbn} not resident after its own fault"
        );
    }
    (read_blocks, ios)
}

proptest! {
    /// A sequential scan reads every block exactly once, regardless of
    /// cluster size, and covers nothing past EOF.
    #[test]
    fn sequential_scan_reads_each_block_once(
        maxcontig in 1u32..32,
        eof in 1u64..500,
    ) {
        let (read, _ios) = scan_file(maxcontig, eof);
        let expect: BTreeSet<u64> = (0..eof).collect();
        prop_assert_eq!(read, expect);
    }

    /// Clustering divides the number of I/O operations by ~maxcontig: the
    /// CPU-amortization claim. (Block mode issues one I/O per block; cluster
    /// mode roughly one per cluster.)
    #[test]
    fn clustering_reduces_io_count(
        maxcontig in 2u32..32,
        clusters in 2u64..20,
    ) {
        let eof = maxcontig as u64 * clusters;
        let (_read_blk, ios_blk) = scan_file(1, eof);
        let (_read_cl, ios_cl) = scan_file(maxcontig, eof);
        // Block mode: ~eof+1 operations. Cluster mode: ~clusters+1.
        prop_assert!(ios_cl <= (clusters as usize + 2));
        prop_assert!(ios_blk >= eof as usize);
        prop_assert!(ios_cl * (maxcontig as usize) <= ios_blk + 2 * maxcontig as usize);
    }

    /// Read-ahead never plans a block below the faulting block during a
    /// sequential scan (it always runs ahead, never behind).
    #[test]
    fn readahead_is_always_ahead(
        maxcontig in 1u32..16,
        eof in 1u64..300,
    ) {
        let mut ra = ReadAhead::new();
        let cluster_len = |lbn: u64| -> u32 {
            if lbn >= eof { 0 } else { maxcontig.min((eof - lbn) as u32) }
        };
        let mut resident = BTreeSet::new();
        for lbn in 0..eof {
            let cached = resident.contains(&lbn);
            let plan = ra.on_access(lbn, cached, cluster_len, 0);
            if let Some(run) = plan.sync {
                prop_assert_eq!(run.lbn, lbn);
                resident.extend(run.lbn..run.lbn + run.blocks as u64);
            }
            if let Some(run) = plan.readahead {
                prop_assert!(run.lbn > lbn, "readahead at {} behind fault {}", run.lbn, lbn);
                resident.extend(run.lbn..run.lbn + run.blocks as u64);
            }
        }
    }

    /// Random (non-sequential) single faults never trigger read-ahead and
    /// read exactly one block, wherever they land.
    #[test]
    fn isolated_random_faults_stay_single_block(
        lbns in proptest::collection::vec(0u64..10_000, 1..50),
        maxcontig in 1u32..16,
    ) {
        let mut ra = ReadAhead::new();
        let cluster_len = |_lbn: u64| -> u32 { maxcontig };
        let mut prev: Option<u64> = None;
        for &lbn in &lbns {
            let sequential_expected =
                prev.map(|p| p + 1 == lbn).unwrap_or(lbn == 0);
            let plan = ra.on_access(lbn, false, cluster_len, 0);
            prop_assert_eq!(plan.sequential, sequential_expected);
            if !plan.sequential {
                let run = plan.sync.unwrap();
                prop_assert_eq!(run.blocks, 1, "random fault reads one block");
                prop_assert!(plan.readahead.is_none());
            }
            prev = Some(lbn);
        }
    }

    /// Delayed-write: for ANY offset pattern, the pushed ranges exactly
    /// partition the offered pages (with a final flush), and no push exceeds
    /// maxcontig pages except merged sequential runs at a boundary flush.
    #[test]
    fn delayed_write_partitions_any_pattern(
        offs in proptest::collection::vec(0u64..200, 1..200),
        maxcontig in 1u32..20,
    ) {
        let mut dw = DelayedWrite::new();
        let mut offered = offs.clone();
        let mut pushed: Vec<u64> = Vec::new();
        for &off in &offs {
            match dw.on_putpage(off, maxcontig) {
                WriteAction::Delay => {}
                WriteAction::Push(r) => {
                    prop_assert!(r.end - r.start <= maxcontig as u64);
                    pushed.extend(r);
                }
                WriteAction::PushThenDelay(r) => {
                    prop_assert!(r.end - r.start <= maxcontig as u64);
                    pushed.extend(r);
                }
            }
        }
        if let Some(r) = dw.flush() {
            pushed.extend(r);
        }
        offered.sort_unstable();
        pushed.sort_unstable();
        prop_assert_eq!(offered, pushed);
    }

    /// Delayed-write never delays more than maxcontig pages.
    #[test]
    fn delayed_write_bounded_pending(
        offs in proptest::collection::vec(0u64..100, 1..100),
        maxcontig in 1u32..20,
    ) {
        let mut dw = DelayedWrite::new();
        for &off in &offs {
            let _ = dw.on_putpage(off, maxcontig);
            if let Some(r) = dw.pending() {
                prop_assert!(r.end - r.start < maxcontig.max(1) as u64 + 1);
            }
        }
    }

    /// Pure sequential writes push exactly at every cluster boundary.
    #[test]
    fn sequential_writes_push_at_boundaries(
        pages in 1u64..300,
        maxcontig in 1u32..16,
    ) {
        let mut dw = DelayedWrite::new();
        let mut pushes = Vec::new();
        for off in 0..pages {
            if let WriteAction::Push(r) = dw.on_putpage(off, maxcontig) {
                prop_assert_eq!(r.end, off + 1, "push happens AT the boundary page");
                prop_assert_eq!(r.end - r.start, maxcontig as u64);
                pushes.push(r);
            }
        }
        prop_assert_eq!(pushes.len() as u64, pages / maxcontig as u64);
    }

    /// For ANY access pattern and ANY cache-pressure trajectory, the
    /// adaptive engine keeps its distance within [1, MAX_DISTANCE] and
    /// its speculative plans never spend a page the reserve could not
    /// cover: total planned blocks ≤ free − reserve, and at or below
    /// the reserve prefetch goes completely quiet.
    #[test]
    fn adaptive_distance_bounded_and_reserve_respected(
        lbns in proptest::collection::vec(0u64..5_000, 1..200),
        cluster in 1u32..16,
        free in 0u64..64,
        reserve in 0u64..32,
    ) {
        let mut ra = AdaptiveRa::new(cluster);
        for &lbn in &lbns {
            let plan = ra.on_access(lbn, false, |_| cluster, 0, free, reserve);
            prop_assert!(
                (1..=MAX_DISTANCE).contains(&ra.distance()),
                "distance {} out of [1, {}]", ra.distance(), MAX_DISTANCE
            );
            prop_assert_eq!(plan.distance, ra.distance());
            let speculative: u64 = plan.runs.iter().map(|r| u64::from(r.blocks)).sum();
            prop_assert!(
                speculative <= free.saturating_sub(reserve),
                "planned {} speculative blocks with only {} above the reserve",
                speculative, free.saturating_sub(reserve)
            );
            if free <= reserve {
                prop_assert!(plan.runs.is_empty(), "prefetched below the reserve");
            }
        }
    }

    /// The ramp is monotone on a hit streak (never shrinks while every
    /// access is sequential, reaches the cap on a long enough streak)
    /// and any miss halves it.
    #[test]
    fn adaptive_ramp_monotone_on_hits_and_halved_on_miss(
        start in 1u64..1_000,
        streak in 2u64..40,
        cluster in 1u32..16,
    ) {
        let mut ra = AdaptiveRa::new(cluster);
        let plenty = 1u64 << 20;
        let _ = ra.on_access(start, false, |_| cluster, 0, plenty, 0);
        let mut prev = ra.distance();
        for i in 1..streak {
            let _ = ra.on_access(start + i, false, |_| cluster, 0, plenty, 0);
            let d = ra.distance();
            prop_assert!(d >= prev, "distance shrank {prev} -> {d} on a sequential hit");
            prop_assert!(d <= prev * 2, "distance grew faster than geometric");
            prev = d;
        }
        if streak > 4 {
            prop_assert_eq!(prev, MAX_DISTANCE, "long streak should reach the cap");
        }
        // A miss (unpredicted forward jump) halves the trust.
        let before = ra.distance();
        let _ = ra.on_access(start + streak + 100, false, |_| cluster, 0, plenty, 0);
        prop_assert_eq!(ra.distance(), (before / 2).max(1));
        // And a backward seek halves it again.
        let before = ra.distance();
        let _ = ra.on_access(start.saturating_sub(1), false, |_| cluster, 0, plenty, 0);
        prop_assert_eq!(ra.distance(), (before / 2).max(1));
    }

    /// BTreeMap oracle: on a PURE sequential stream the stride detector
    /// must never kick in. Every access is judged sequential, no plan
    /// carries a sieve pattern, speculation stays strictly ahead of the
    /// reader and inside EOF, no block is ever read twice, and the
    /// resident set ends up gap-free — i.e. the adaptive engine degrades
    /// to (deep) sequential read-ahead, never to a mispredicted stride.
    #[test]
    fn adaptive_pure_sequential_never_mispredicted(
        eof in 1u64..400,
        cluster in 1u32..16,
    ) {
        let mut ra = AdaptiveRa::new(cluster);
        let cluster_len = |lbn: u64| -> u32 {
            if lbn >= eof { 0 } else { cluster.min((eof - lbn) as u32) }
        };
        // Oracle: block -> how it became resident ("sync" | "prefetch").
        let mut oracle: BTreeMap<u64, &'static str> = BTreeMap::new();
        for lbn in 0..eof {
            let cached = oracle.contains_key(&lbn);
            let plan = ra.on_access(lbn, cached, cluster_len, 0, 1 << 20, 0);
            prop_assert!(plan.sequential, "sequential access at {lbn} judged a seek");
            if let Some(run) = plan.sync {
                prop_assert_eq!(run.lbn, lbn);
                for b in run.lbn..run.lbn + u64::from(run.blocks) {
                    prop_assert!(b < eof, "sync read past EOF at {b}");
                    prop_assert_eq!(oracle.insert(b, "sync"), None, "block {} read twice", b);
                }
            }
            for run in &plan.runs {
                prop_assert!(run.sieve.is_none(), "data sieving on a pure-sequential stream");
                for b in run.lbn..run.lbn + u64::from(run.blocks) {
                    prop_assert!(b < eof, "speculation past EOF at {b}");
                    prop_assert!(b > lbn, "speculation at {b} behind the reader at {lbn}");
                    prop_assert_eq!(oracle.insert(b, "prefetch"), None, "block {} read twice", b);
                }
            }
            prop_assert!(oracle.contains_key(&lbn), "block {lbn} not resident after its fault");
        }
        let top = *oracle.keys().next_back().unwrap();
        prop_assert_eq!(oracle.len() as u64, top + 1, "gap in sequential coverage");
    }
}
