//! The per-file write limit ("Write limits or fairness").
//!
//! Asynchronous writes let one process dirty every page in the machine —
//! "a large process dumping core can cause the system to be temporarily
//! unusable". The fix is "essentially a counting semaphore in the inode":
//! each writer acquires permits for the bytes it queues to the disk and the
//! I/O completion returns them; a writer that would exceed the limit sleeps
//! until earlier writes finish.
//!
//! The limit must be large enough to keep the I/O pipeline free of bubbles
//! (more than two or three outstanding writes) and to give `disksort`
//! something to sort — hence the paper's fairly large 240 KB default.

use simkit::stats::{Counter, Gauge};
use simkit::{Semaphore, SimDuration, SpanId, TimeHandle, Tracer};
use std::cell::Cell;
use std::rc::Rc;

struct ThrottleInner {
    sem: Semaphore,
    limit: u64,
    /// Total virtual time writers spent blocked on the limit.
    stalled: Cell<SimDuration>,
    stall_count: Cell<u64>,
    /// Registry mirrors (`core.throttle_*`), shared across every throttle
    /// on the same `Sim`.
    m_stalls: Counter,
    m_stall_ns: Counter,
    /// Per-stream registry mirrors (`core.throttle_*{stream=N}`), so the
    /// fairness experiments can attribute stalls to the stream that slept.
    s_stalls: Counter,
    s_stall_ns: Counter,
    /// Writers currently blocked on the limit across every throttle on the
    /// `Sim` — the telemetry sampler's live view of throttle pressure.
    m_waiting: Gauge,
    /// The owning stream, stamped onto `throttle.stall` trace spans.
    stream: u32,
    /// Span tracer (like the counters, holds no `Sim`).
    tracer: Tracer,
}

/// Per-file write throttle. Clones share the same limit.
///
/// Holds a [`TimeHandle`], not a full `Sim`: throttles live inside inodes
/// the simulator (transitively) owns, and a `Sim` clone there would pin
/// the executor in an `Rc` cycle.
#[derive(Clone)]
pub struct WriteThrottle {
    inner: Option<Rc<ThrottleInner>>,
    time: TimeHandle,
}

impl WriteThrottle {
    /// Creates a throttle admitting at most `limit` bytes of queued writes;
    /// `None` disables throttling (config "D"). Stalls are attributed to
    /// the untagged stream 0; use [`WriteThrottle::for_stream`] when the
    /// owner has a stream identity.
    pub fn new(sim: &simkit::Sim, limit: Option<u32>) -> WriteThrottle {
        WriteThrottle::for_stream(sim, limit, 0)
    }

    /// Like [`WriteThrottle::new`], but stalls also count against the
    /// per-stream counters `core.throttle_stalls{stream=N}` /
    /// `core.throttle_stall_ns{stream=N}`.
    pub fn for_stream(sim: &simkit::Sim, limit: Option<u32>, stream: u32) -> WriteThrottle {
        WriteThrottle {
            inner: limit.map(|l| {
                Rc::new(ThrottleInner {
                    sem: Semaphore::new(l as u64),
                    limit: l as u64,
                    stalled: Cell::new(SimDuration::ZERO),
                    stall_count: Cell::new(0),
                    m_stalls: sim.stats().counter("core.throttle_stalls"),
                    m_stall_ns: sim.stats().counter("core.throttle_stall_ns"),
                    s_stalls: sim.stats().stream_counter("core.throttle_stalls", stream),
                    s_stall_ns: sim.stats().stream_counter("core.throttle_stall_ns", stream),
                    m_waiting: sim.stats().gauge("core.throttle_waiting"),
                    stream,
                    tracer: sim.tracer().clone(),
                })
            }),
            time: sim.time_handle(),
        }
    }

    /// Reserves `bytes` of queue space, sleeping if the file already has
    /// the limit's worth of writes in flight. Returns a token that must be
    /// passed to [`WriteThrottle::complete`] when the I/O finishes.
    ///
    /// Requests larger than the whole limit are clamped (they could never
    /// be admitted otherwise).
    pub async fn begin_write(&self, bytes: u64) -> WriteToken {
        self.begin_write_traced(bytes, SpanId::NONE).await
    }

    /// Like [`WriteThrottle::begin_write`], additionally recording any
    /// stall as a `throttle.stall` trace span under `parent`. Stalls are
    /// only discovered after the semaphore wait, so the span is recorded
    /// retroactively — and only when time was actually lost, keeping
    /// traces free of zero-width noise.
    pub async fn begin_write_traced(&self, bytes: u64, parent: SpanId) -> WriteToken {
        let Some(inner) = &self.inner else {
            return WriteToken { bytes: 0 };
        };
        let ask = bytes.min(inner.limit);
        if ask == 0 {
            return WriteToken { bytes: 0 };
        }
        let before = self.time.now();
        // Count this writer as waiting across the acquire; uncontended
        // acquisitions complete at the same virtual instant, so the gauge
        // only reads nonzero while someone is genuinely blocked.
        inner.m_waiting.add(1.0);
        let permit = inner.sem.acquire(ask).await;
        inner.m_waiting.add(-1.0);
        let after = self.time.now();
        let waited = after.duration_since(before);
        if !waited.is_zero() {
            inner.stalled.set(inner.stalled.get() + waited);
            inner.stall_count.set(inner.stall_count.get() + 1);
            inner.m_stalls.inc();
            inner.m_stall_ns.add(waited.as_nanos());
            inner.s_stalls.inc();
            inner.s_stall_ns.add(waited.as_nanos());
            let span = inner
                .tracer
                .record("throttle.stall", inner.stream, parent, before, after);
            inner.tracer.arg(span, "bytes", ask);
        }
        // The permit outlives this future: the disk interrupt releases it.
        permit.forget();
        WriteToken { bytes: ask }
    }

    /// Releases the queue space held by `token` (call from the write
    /// completion path).
    pub fn complete(&self, token: WriteToken) {
        if token.bytes > 0 {
            if let Some(inner) = &self.inner {
                inner.sem.release(token.bytes);
            }
        }
    }

    /// Bytes currently admitted to the disk queue.
    pub fn in_flight(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.limit - inner.sem.available(),
            None => 0,
        }
    }

    /// Total time writers spent blocked, and how many blocking acquisitions
    /// occurred.
    pub fn stall_stats(&self) -> (SimDuration, u64) {
        match &self.inner {
            Some(inner) => (inner.stalled.get(), inner.stall_count.get()),
            None => (SimDuration::ZERO, 0),
        }
    }

    /// Whether a limit is configured.
    pub fn is_limited(&self) -> bool {
        self.inner.is_some()
    }
}

/// Receipt for queue space reserved by [`WriteThrottle::begin_write`].
#[derive(Debug)]
#[must_use = "pass the token to WriteThrottle::complete when the I/O finishes"]
pub struct WriteToken {
    bytes: u64,
}

impl WriteToken {
    /// Bytes reserved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Sim;
    use std::cell::RefCell;

    #[test]
    fn unlimited_never_blocks() {
        let sim = Sim::new();
        let t = WriteThrottle::new(&sim, None);
        let t2 = t.clone();
        sim.run_until(async move {
            for _ in 0..100 {
                let tok = t2.begin_write(1 << 20).await;
                // Never completed; still must not block.
                assert_eq!(tok.bytes(), 0);
            }
        });
        assert_eq!(sim.now(), simkit::SimTime::ZERO);
    }

    #[test]
    fn writer_blocks_at_limit_until_completion() {
        let sim = Sim::new();
        let t = WriteThrottle::new(&sim, Some(16 * 1024));
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let pending: Rc<RefCell<Vec<WriteToken>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let t = t.clone();
            let log = Rc::clone(&log);
            let pending = Rc::clone(&pending);
            let s = sim.clone();
            sim.spawn(async move {
                // Two 8 KB writes fill the 16 KB limit.
                let tok = t.begin_write(8192).await;
                pending.borrow_mut().push(tok);
                let tok = t.begin_write(8192).await;
                pending.borrow_mut().push(tok);
                log.borrow_mut().push("filled");
                // Third write must wait for a completion.
                let tok = t.begin_write(8192).await;
                log.borrow_mut().push("third-admitted");
                assert_eq!(s.now().as_nanos(), 5_000_000);
                t.complete(tok);
            });
        }
        {
            let t = t.clone();
            let pending = Rc::clone(&pending);
            let s = sim.clone();
            sim.spawn(async move {
                // "Disk": completes one write at t = 5 ms.
                s.sleep(simkit::SimDuration::from_millis(5)).await;
                let tok = pending.borrow_mut().remove(0);
                t.complete(tok);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["filled", "third-admitted"]);
        let (stalled, count) = t.stall_stats();
        assert_eq!(count, 1);
        assert_eq!(stalled, simkit::SimDuration::from_millis(5));
    }

    #[test]
    fn stalls_are_attributed_to_the_stream() {
        let sim = Sim::new();
        let t = WriteThrottle::for_stream(&sim, Some(8192), 3);
        let pending: Rc<RefCell<Vec<WriteToken>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let t = t.clone();
            let pending = Rc::clone(&pending);
            sim.spawn(async move {
                let tok = t.begin_write(8192).await;
                pending.borrow_mut().push(tok);
                let tok = t.begin_write(8192).await;
                t.complete(tok);
            });
        }
        {
            let t = t.clone();
            let pending = Rc::clone(&pending);
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(simkit::SimDuration::from_millis(2)).await;
                let tok = pending.borrow_mut().remove(0);
                t.complete(tok);
            });
        }
        sim.run();
        assert_eq!(sim.stats().counter_value("core.throttle_stalls"), 1);
        assert_eq!(
            sim.stats().counter_value("core.throttle_stalls{stream=3}"),
            1
        );
        assert_eq!(
            sim.stats()
                .counter_value("core.throttle_stall_ns{stream=3}"),
            2_000_000
        );
    }

    #[test]
    fn oversized_write_is_clamped_not_deadlocked() {
        let sim = Sim::new();
        let t = WriteThrottle::new(&sim, Some(4096));
        let t2 = t.clone();
        sim.run_until(async move {
            let tok = t2.begin_write(1 << 20).await;
            assert_eq!(tok.bytes(), 4096, "clamped to the whole limit");
            t2.complete(tok);
        });
    }

    #[test]
    fn in_flight_tracks_admissions() {
        let sim = Sim::new();
        let t = WriteThrottle::new(&sim, Some(32 * 1024));
        let t2 = t.clone();
        let tok = sim.run_until(async move { t2.begin_write(8192).await });
        assert_eq!(t.in_flight(), 8192);
        t.complete(tok);
        assert_eq!(t.in_flight(), 0);
    }
}
