//! The free-behind policy (the paper's "Page thrashing" fix).
//!
//! Large sequential reads would otherwise turn all of memory into a buffer
//! cache for pages that will never be reused, evicting every other user's
//! working set through the pageout daemon. "The compromise is inelegant":
//! turn on *free behind* — the reading process frees the page it just
//! consumed — but only when all of the following hold:
//!
//! 1. the file is in sequential read mode,
//! 2. the read offset is large enough (small files should still cache), and
//! 3. free memory is close to the low-water mark that turns on the pager.
//!
//! "Free behind has the desired attribute that the process that is causing
//! the problem is the process finding the solution."

/// Free-behind policy parameters.
#[derive(Clone, Copy, Debug)]
pub struct FreeBehindPolicy {
    /// Master switch (Figure 9's "free behind" column).
    pub enabled: bool,
    /// Minimum file offset (bytes) before free-behind may trigger; reads
    /// below this always cache.
    pub min_offset: u64,
    /// Headroom multiplier over the pager's low-water mark: free-behind
    /// triggers when `freemem < lowater * headroom`.
    pub headroom: f64,
}

impl FreeBehindPolicy {
    /// The SunOS 4.1.1-style defaults: trigger past 256 KB into the file
    /// when free memory is within 2x of the pageout low-water mark.
    pub fn sunos_411(enabled: bool) -> FreeBehindPolicy {
        FreeBehindPolicy {
            enabled,
            min_offset: 256 * 1024,
            headroom: 2.0,
        }
    }

    /// Decides whether `rdwr` should free the page it just unmapped.
    ///
    /// * `sequential` — the inode is in sequential read mode.
    /// * `offset` — byte offset of the page being unmapped.
    /// * `freemem` / `lowater` — current free page count and the pageout
    ///   daemon's low-water mark, in pages.
    pub fn should_free(
        &self,
        sequential: bool,
        offset: u64,
        freemem: usize,
        lowater: usize,
    ) -> bool {
        self.enabled
            && sequential
            && offset >= self.min_offset
            && (freemem as f64) < lowater as f64 * self.headroom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> FreeBehindPolicy {
        FreeBehindPolicy::sunos_411(true)
    }

    #[test]
    fn triggers_only_under_memory_pressure() {
        let p = policy();
        // Plenty of memory: cache normally.
        assert!(!p.should_free(true, 1 << 20, 1000, 64));
        // Near the low-water mark: free behind.
        assert!(p.should_free(true, 1 << 20, 100, 64));
    }

    #[test]
    fn small_files_still_cache() {
        let p = policy();
        assert!(!p.should_free(true, 8 * 1024, 10, 64));
        assert!(p.should_free(true, 512 * 1024, 10, 64));
    }

    #[test]
    fn random_reads_never_freed() {
        let p = policy();
        assert!(!p.should_free(false, 1 << 20, 10, 64));
    }

    #[test]
    fn disabled_policy_never_frees() {
        let p = FreeBehindPolicy::sunos_411(false);
        assert!(!p.should_free(true, 1 << 20, 10, 64));
    }
}
