//! The delayed-write accumulator (the paper's Figures 7 and 8).
//!
//! `ufs_putpage` "handles writes by assuming sequential I/O and pretending
//! that the I/O completed immediately". The state lives in two inode
//! fields, `delayoff` and `delaylen`; this module models them as a pure
//! state machine over page offsets, returning what the caller must push to
//! disk, if anything.
//!
//! Unlike Peacock's System V clustering, which waits for the buffer cache to
//! fill, this design "starts a write each time a cluster boundary is
//! crossed", keeping the disks uniformly busy — so accumulating the
//! `maxcontig`-th page flushes immediately (Figure 7's `push 0,1,2` happens
//! at page 2, not page 3).

use std::ops::Range;

/// What `putpage` must do for one offered page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteAction {
    /// Pretend the I/O completed; the page stays dirty in the page cache.
    Delay,
    /// Push this range of pages (which includes the offered page) as one or
    /// more cluster writes.
    Push(Range<u64>),
    /// Non-sequential pattern: push the previously delayed range, then the
    /// offered page starts a new delayed run.
    PushThenDelay(Range<u64>),
}

/// Per-file delayed-write state (`delayoff`/`delaylen`, in pages).
#[derive(Clone, Debug, Default)]
pub struct DelayedWrite {
    delayoff: u64,
    delaylen: u64,
    active: bool,
}

impl DelayedWrite {
    /// Fresh state with nothing delayed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any pages are currently delayed.
    pub fn has_pending(&self) -> bool {
        self.active && self.delaylen > 0
    }

    /// The currently delayed range, if any.
    pub fn pending(&self) -> Option<Range<u64>> {
        if self.has_pending() {
            Some(self.delayoff..self.delayoff + self.delaylen)
        } else {
            None
        }
    }

    /// Offers page `off` for writing; `maxcontig` is the cluster size in
    /// pages.
    ///
    /// Mirrors Figure 8:
    ///
    /// ```text
    /// if (delaylen < maxcontig && delayoff + delaylen == off) {
    ///     delaylen += PAGESIZE
    ///     return                       // (flushing when the cluster fills)
    /// }
    /// find all pages from delayoff to delayoff + delaylen ... push
    /// ```
    pub fn on_putpage(&mut self, off: u64, maxcontig: u32) -> WriteAction {
        let maxcontig = maxcontig.max(1) as u64;
        if !self.active {
            self.active = true;
            self.delayoff = off;
            self.delaylen = 1;
            return self.maybe_complete(maxcontig);
        }
        if self.delaylen < maxcontig && self.delayoff + self.delaylen == off {
            self.delaylen += 1;
            return self.maybe_complete(maxcontig);
        }
        // "If we do detect random writes, we write out the old pages between
        // delayoff and delayoff + delaylen before restarting the algorithm
        // with the current page."
        let old = self.delayoff..self.delayoff + self.delaylen;
        self.delayoff = off;
        self.delaylen = 1;
        // With maxcontig == 1 every page completes its "cluster" on arrival
        // (handled above), so a delayed range can only exist when
        // maxcontig > 1 — the new single page cannot itself be complete.
        debug_assert!(maxcontig > 1, "delayed range impossible at maxcontig=1");
        WriteAction::PushThenDelay(old)
    }

    fn maybe_complete(&mut self, maxcontig: u64) -> WriteAction {
        if self.delaylen >= maxcontig {
            let range = self.delayoff..self.delayoff + self.delaylen;
            self.active = false;
            self.delaylen = 0;
            WriteAction::Push(range)
        } else {
            WriteAction::Delay
        }
    }

    /// Flushes any delayed range (fsync, close, inode deactivation, or the
    /// pageout daemon forcing the issue). Returns the range to push.
    pub fn flush(&mut self) -> Option<Range<u64>> {
        if self.has_pending() {
            let range = self.delayoff..self.delayoff + self.delaylen;
            self.active = false;
            self.delaylen = 0;
            Some(range)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_trace() {
        // maxcontig = 3: pages 0,1 lie; page 2 pushes 0,1,2; pages 3,4 lie;
        // page 5 pushes 3,4,5.
        let mut dw = DelayedWrite::new();
        assert_eq!(dw.on_putpage(0, 3), WriteAction::Delay);
        assert_eq!(dw.on_putpage(1, 3), WriteAction::Delay);
        assert_eq!(dw.on_putpage(2, 3), WriteAction::Push(0..3));
        assert_eq!(dw.on_putpage(3, 3), WriteAction::Delay);
        assert_eq!(dw.on_putpage(4, 3), WriteAction::Delay);
        assert_eq!(dw.on_putpage(5, 3), WriteAction::Push(3..6));
        assert!(!dw.has_pending());
    }

    #[test]
    fn maxcontig_one_pushes_every_page() {
        let mut dw = DelayedWrite::new();
        for off in 0..5u64 {
            assert_eq!(dw.on_putpage(off, 1), WriteAction::Push(off..off + 1));
        }
    }

    #[test]
    fn random_writes_flush_old_run() {
        let mut dw = DelayedWrite::new();
        assert_eq!(dw.on_putpage(10, 4), WriteAction::Delay);
        assert_eq!(dw.on_putpage(11, 4), WriteAction::Delay);
        // Jump away: the old run [10,12) is pushed, 50 starts a new run.
        assert_eq!(dw.on_putpage(50, 4), WriteAction::PushThenDelay(10..12));
        assert_eq!(dw.pending(), Some(50..51));
    }

    #[test]
    fn backwards_write_is_random_too() {
        let mut dw = DelayedWrite::new();
        dw.on_putpage(10, 4);
        assert_eq!(dw.on_putpage(9, 4), WriteAction::PushThenDelay(10..11));
        assert_eq!(dw.pending(), Some(9..10));
    }

    #[test]
    fn rewriting_same_page_is_not_sequential() {
        // delayoff + delaylen == off fails for a rewrite of the same page.
        let mut dw = DelayedWrite::new();
        dw.on_putpage(5, 4);
        assert_eq!(dw.on_putpage(5, 4), WriteAction::PushThenDelay(5..6));
    }

    #[test]
    fn flush_drains_pending() {
        let mut dw = DelayedWrite::new();
        dw.on_putpage(0, 8);
        dw.on_putpage(1, 8);
        dw.on_putpage(2, 8);
        assert_eq!(dw.flush(), Some(0..3));
        assert_eq!(dw.flush(), None);
        assert!(!dw.has_pending());
    }

    #[test]
    fn sequence_resumes_after_flush() {
        let mut dw = DelayedWrite::new();
        dw.on_putpage(0, 3);
        dw.flush();
        // After a flush the engine restarts cleanly at any offset.
        assert_eq!(dw.on_putpage(1, 3), WriteAction::Delay);
        assert_eq!(dw.on_putpage(2, 3), WriteAction::Delay);
        assert_eq!(dw.on_putpage(3, 3), WriteAction::Push(1..4));
    }

    /// Every page offered is eventually pushed exactly once, and every push
    /// is at most `maxcontig` long — checked over a structured mixed
    /// workload.
    #[test]
    fn pushes_partition_offered_pages() {
        for maxcontig in [1u32, 2, 3, 7, 15] {
            let mut dw = DelayedWrite::new();
            let mut offered = Vec::new();
            let mut pushed = Vec::new();
            // Three sequential runs at scattered offsets, then interleaved
            // jumps.
            let pattern: Vec<u64> = (0..20)
                .chain(100..113)
                .chain([500, 7, 501, 8, 502])
                .collect();
            for &off in &pattern {
                offered.push(off);
                match dw.on_putpage(off, maxcontig) {
                    WriteAction::Delay => {}
                    WriteAction::Push(r) => pushed.extend(r),
                    WriteAction::PushThenDelay(r) => pushed.extend(r),
                }
            }
            if let Some(r) = dw.flush() {
                pushed.extend(r);
            }
            offered.sort_unstable();
            pushed.sort_unstable();
            assert_eq!(
                offered, pushed,
                "maxcontig={maxcontig}: every offered page pushed exactly once"
            );
        }
    }
}
