//! Per-inode cache of `<logical, physical, length>` extent tuples
//! (the paper's Further Work "Bmap cache" / "Extents vs blocks" ideas).
//!
//! "The translation from logical location to physical location is done
//! frequently and gets more expensive for large files because of indirect
//! blocks. A small cache in the inode could reduce the cost of bmap
//! substantially." Because the clustered file system allocates mostly
//! contiguous files, one tuple covers a long run of blocks, so a handful of
//! entries cover most files.

/// One cached translation: `len` logical blocks starting at `lbn` map to
/// physical blocks starting at `pbn`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtentTuple {
    /// First logical block covered.
    pub lbn: u64,
    /// Physical block of `lbn`.
    pub pbn: u64,
    /// Blocks covered.
    pub len: u32,
}

/// A small LRU cache of extent tuples.
#[derive(Clone, Debug)]
pub struct BmapCache {
    /// Most-recently-used last.
    entries: Vec<ExtentTuple>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl BmapCache {
    /// Creates a cache holding at most `capacity` tuples.
    pub fn new(capacity: usize) -> Self {
        BmapCache {
            entries: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `lbn`; on a hit returns the physical block and how many
    /// blocks (including `lbn`) remain in the cached extent.
    pub fn lookup(&mut self, lbn: u64) -> Option<(u64, u32)> {
        let pos = self
            .entries
            .iter()
            .position(|e| lbn >= e.lbn && lbn < e.lbn + e.len as u64);
        match pos {
            Some(i) => {
                let e = self.entries.remove(i);
                let off = lbn - e.lbn;
                let result = (e.pbn + off, e.len - off as u32);
                self.entries.push(e); // Move to MRU position.
                self.hits += 1;
                Some(result)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a translation learned from a real `bmap` call. Overlapping
    /// stale entries are dropped; the LRU entry is evicted at capacity.
    pub fn insert(&mut self, tuple: ExtentTuple) {
        if tuple.len == 0 {
            return;
        }
        self.entries
            .retain(|e| e.lbn + e.len as u64 <= tuple.lbn || tuple.lbn + tuple.len as u64 <= e.lbn);
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(tuple);
    }

    /// Drops every entry at or beyond `lbn` (truncate) — or everything,
    /// with `lbn = 0` (block reallocation).
    pub fn invalidate_from(&mut self, lbn: u64) {
        self.entries.retain(|e| e.lbn + e.len as u64 <= lbn);
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_offset_translation() {
        let mut c = BmapCache::new(4);
        c.insert(ExtentTuple {
            lbn: 10,
            pbn: 1000,
            len: 8,
        });
        assert_eq!(c.lookup(10), Some((1000, 8)));
        assert_eq!(c.lookup(14), Some((1004, 4)));
        assert_eq!(c.lookup(17), Some((1007, 1)));
        assert_eq!(c.lookup(18), None);
        assert_eq!(c.lookup(9), None);
        assert_eq!(c.stats(), (3, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = BmapCache::new(2);
        c.insert(ExtentTuple {
            lbn: 0,
            pbn: 100,
            len: 1,
        });
        c.insert(ExtentTuple {
            lbn: 10,
            pbn: 200,
            len: 1,
        });
        // Touch 0 so 10 becomes LRU.
        assert!(c.lookup(0).is_some());
        c.insert(ExtentTuple {
            lbn: 20,
            pbn: 300,
            len: 1,
        });
        assert!(c.lookup(10).is_none(), "LRU entry evicted");
        assert!(c.lookup(0).is_some());
        assert!(c.lookup(20).is_some());
    }

    #[test]
    fn insert_replaces_overlapping_entries() {
        let mut c = BmapCache::new(4);
        c.insert(ExtentTuple {
            lbn: 0,
            pbn: 100,
            len: 8,
        });
        // File reallocated: blocks 4..12 now live elsewhere.
        c.insert(ExtentTuple {
            lbn: 4,
            pbn: 500,
            len: 8,
        });
        assert_eq!(c.lookup(4), Some((500, 8)));
        assert_eq!(c.lookup(0), None, "stale overlapping entry dropped");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_from_truncates() {
        let mut c = BmapCache::new(4);
        c.insert(ExtentTuple {
            lbn: 0,
            pbn: 100,
            len: 4,
        });
        c.insert(ExtentTuple {
            lbn: 8,
            pbn: 200,
            len: 4,
        });
        c.invalidate_from(8);
        assert!(c.lookup(8).is_none());
        assert!(c.lookup(2).is_some());
        c.invalidate_from(0);
        assert!(c.is_empty());
    }

    #[test]
    fn zero_length_insert_ignored() {
        let mut c = BmapCache::new(4);
        c.insert(ExtentTuple {
            lbn: 0,
            pbn: 0,
            len: 0,
        });
        assert!(c.is_empty());
    }
}
