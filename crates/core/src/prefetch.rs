//! Adaptive readahead: the distance-adaptive, stride-aware prefetch
//! engine (ROADMAP open item 4 — "beyond the paper's one-cluster
//! predictor").
//!
//! The paper's [`ReadAhead`] predicts exactly one cluster ahead
//! (`nextr`/`nextrio`). This module generalizes it into a per-stream
//! policy with three selectable behaviors:
//!
//! - [`PrefetchPolicy::Fixed`] — the paper's engine, verbatim (the
//!   baseline every experiment compares against).
//! - [`PrefetchPolicy::Off`] — the ablation: one block per fault, no
//!   speculation.
//! - [`PrefetchPolicy::Adaptive`] — [`AdaptiveRa`]: detects sequential
//!   *and* fixed-stride access, ramps prefetch distance geometrically
//!   (1 → 2 → 4 … clusters, capped at [`MAX_DISTANCE`]) on
//!   pattern-conforming accesses, halves it on mispredicted jumps, and
//!   never consumes page-cache headroom below the caller-supplied
//!   reserve (the `cache.free_pages` coupling that keeps prefetch from
//!   stalling foreground allocations).
//!
//! For strided streams the planner chooses between two issue shapes per
//! prediction window: *list I/O* (one exact run per predicted record —
//! the MPI-IO noncontiguous-read shape) when records are far apart, and
//! *data sieving* (one spanning run whose gap blocks are read and
//! discarded) when the gaps are small enough that one large transfer
//! beats several small ones. A sieving run carries its `(keep, period)`
//! pattern so the executor can account the discarded bytes.
//!
//! Like [`ReadAhead`], the engine is a pure state machine over logical
//! block numbers: substrate-free, deterministic, and property-testable
//! in isolation.

use crate::readahead::{ReadAhead, ReadRun};

/// Hard cap on the adaptive prefetch distance, in I/O clusters.
pub const MAX_DISTANCE: u32 = 8;

/// Which prefetch engine a mount runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// No speculation at all (the ablation baseline).
    Off,
    /// The paper's one-cluster `nextr`/`nextrio` predictor.
    Fixed,
    /// Distance-adaptive, stride-aware prefetch ([`AdaptiveRa`]).
    Adaptive,
}

impl PrefetchPolicy {
    /// Parses a CLI spelling (`off`, `fixed`, `adaptive`).
    pub fn parse(s: &str) -> Option<PrefetchPolicy> {
        match s {
            "off" => Some(PrefetchPolicy::Off),
            "fixed" => Some(PrefetchPolicy::Fixed),
            "adaptive" => Some(PrefetchPolicy::Adaptive),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            PrefetchPolicy::Off => "off",
            PrefetchPolicy::Fixed => "fixed",
            PrefetchPolicy::Adaptive => "adaptive",
        }
    }
}

/// One planned speculative read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchRun {
    /// First logical block.
    pub lbn: u64,
    /// Number of blocks (≥ 1).
    pub blocks: u32,
    /// Data-sieving pattern: `Some((keep, period))` means that within
    /// this run, the block at offset `o` from [`PrefetchRun::lbn`] is
    /// wanted iff `o % period < keep`; the rest is gap filler read only
    /// to keep the transfer contiguous (and must be accounted as wasted
    /// bytes). `None` is an exact run: every block is wanted.
    pub sieve: Option<(u32, u32)>,
}

/// The engine's answer for one access.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetchPlan {
    /// Cluster to read synchronously (the faulting block's cluster);
    /// `None` when the block is already cached.
    pub sync: Option<ReadRun>,
    /// Speculative reads to issue, in ascending block order.
    pub runs: Vec<PrefetchRun>,
    /// Whether this access was judged sequential.
    pub sequential: bool,
    /// Prefetch distance after this access, in clusters (1 for the
    /// fixed engine when it prefetches, 0 when it does not).
    pub distance: u32,
    /// The plan was clipped (possibly to nothing) by page-cache
    /// pressure: issuing more would have eaten into the reserve.
    pub throttled: bool,
}

impl PrefetchPlan {
    fn from_legacy(plan: crate::readahead::ReadPlan) -> PrefetchPlan {
        let runs = plan
            .readahead
            .map(|r| PrefetchRun {
                lbn: r.lbn,
                blocks: r.blocks,
                sieve: None,
            })
            .into_iter()
            .collect::<Vec<_>>();
        PrefetchPlan {
            distance: if runs.is_empty() { 0 } else { 1 },
            sync: plan.sync,
            sequential: plan.sequential,
            throttled: false,
            runs,
        }
    }
}

/// Distance-adaptive, stride-aware prefetch state (one per stream).
#[derive(Clone, Debug)]
pub struct AdaptiveRa {
    /// The mount's I/O unit (UFS: the tuned cluster; extentfs: the
    /// extent unit) — the quantum the distance is measured in.
    cluster_blocks: u32,
    /// Distance cap, in clusters.
    cap: u32,
    /// Current prefetch distance, in clusters.
    distance: u32,
    /// Predicted next sequential block (the paper's `nextr`).
    nextr: u64,
    /// Whether any access has been observed yet.
    started: bool,
    /// First block of the current sequential run (record).
    run_start: u64,
    /// Length of the last completed record, in blocks (0 = unknown).
    rec_len: u32,
    /// Confirmed record-start-to-record-start stride, in blocks.
    period: Option<u64>,
    /// A stride seen once, awaiting confirmation.
    candidate: Option<u64>,
    /// First block beyond issued sequential-mode coverage.
    frontier: u64,
    /// First record start beyond issued strided-mode coverage.
    pred_frontier: u64,
}

impl AdaptiveRa {
    /// Fresh state for a stream on a mount with the given I/O unit.
    pub fn new(cluster_blocks: u32) -> AdaptiveRa {
        AdaptiveRa {
            cluster_blocks: cluster_blocks.max(1),
            cap: MAX_DISTANCE,
            distance: 1,
            nextr: 0,
            started: false,
            run_start: 0,
            rec_len: 0,
            period: None,
            candidate: None,
            frontier: 0,
            pred_frontier: 0,
        }
    }

    /// Current prefetch distance, in clusters.
    pub fn distance(&self) -> u32 {
        self.distance
    }

    /// Computes the I/O plan for an access to `lbn`.
    ///
    /// `cached`, `cluster_len` and `size_hint_blocks` mean exactly what
    /// they mean for [`ReadAhead::on_access`]; the synchronous-read
    /// policy is identical. `free_pages`/`reserve` couple the plan to
    /// page-cache pressure: speculative reads never claim more than
    /// `free_pages - reserve` pages.
    pub fn on_access(
        &mut self,
        lbn: u64,
        cached: bool,
        mut cluster_len: impl FnMut(u64) -> u32,
        size_hint_blocks: u32,
        free_pages: u64,
        reserve: u64,
    ) -> PrefetchPlan {
        let sequential = lbn == self.nextr;
        let prev_nextr = self.nextr;
        self.nextr = lbn + 1;
        let mut plan = PrefetchPlan {
            sequential,
            ..PrefetchPlan::default()
        };

        // The synchronous read: same policy as the paper's engine.
        let mut sync_len = 0u32;
        if !cached {
            let avail = cluster_len(lbn);
            sync_len = if sequential {
                avail
            } else if size_hint_blocks > 1 {
                avail.min(size_hint_blocks)
            } else {
                avail.min(1)
            };
            if sync_len > 0 {
                plan.sync = Some(ReadRun {
                    lbn,
                    blocks: sync_len,
                });
            }
        }

        // Pattern tracking: sequential runs are "records"; the jumps
        // between their starts are the stride.
        let mut predicted_jump = false;
        if !self.started {
            self.started = true;
            self.run_start = lbn;
        } else if !sequential {
            if lbn > self.run_start {
                // Forward jump: the record [run_start, prev_nextr) ended.
                let completed = prev_nextr.saturating_sub(self.run_start) as u32;
                if completed > 0 {
                    self.rec_len = completed;
                }
                let stride = lbn - self.run_start;
                if self.period == Some(stride) || self.candidate == Some(stride) {
                    // The same stride twice running confirms the pattern.
                    self.period = Some(stride);
                    self.candidate = None;
                    predicted_jump = true;
                } else {
                    self.period = None;
                    self.candidate = Some(stride);
                    self.pred_frontier = 0;
                }
            } else {
                // Backward seek: forget everything.
                self.period = None;
                self.candidate = None;
                self.rec_len = 0;
                self.pred_frontier = 0;
            }
            self.run_start = lbn;
            self.frontier = 0;
        } else if let Some(p) = self.period {
            // A sequential run that outgrows the stride pattern demotes
            // it back to plain sequential.
            if lbn >= self.run_start + 2 * p {
                self.period = None;
                self.candidate = None;
                self.rec_len = 0;
            }
        }

        // Distance ramp: geometric growth while the pattern holds,
        // halving on every mispredicted jump or seek.
        if sequential || predicted_jump {
            self.distance = (self.distance * 2).min(self.cap);
        } else {
            self.distance = (self.distance / 2).max(1);
        }
        plan.distance = self.distance;

        // Page-cache pressure: speculation only spends headroom above
        // the reserve. At or below it, prefetch goes completely quiet
        // so foreground faults never inherit an alloc stall.
        let mut budget = free_pages.saturating_sub(reserve);

        if predicted_jump {
            self.plan_strided(&mut plan, &mut cluster_len, &mut budget);
        } else if sequential && self.period.is_none() {
            self.plan_sequential(lbn, sync_len, &mut plan, &mut cluster_len, &mut budget);
        }
        plan
    }

    /// Sequential mode: keep `distance` clusters of coverage ahead of
    /// the reader, re-extending once coverage decays below half (so
    /// issues batch up instead of trickling one block per access).
    fn plan_sequential(
        &mut self,
        lbn: u64,
        sync_len: u32,
        plan: &mut PrefetchPlan,
        cluster_len: &mut impl FnMut(u64) -> u32,
        budget: &mut u64,
    ) {
        let covered_from = (lbn + 1).max(self.frontier).max(lbn + sync_len as u64);
        let ahead = covered_from - (lbn + 1);
        let want_ahead = self.distance as u64 * self.cluster_blocks as u64;
        if ahead * 2 > want_ahead {
            return; // Enough runway; stay quiet.
        }
        let target = lbn + 1 + want_ahead;
        let mut pos = covered_from;
        while pos < target {
            if *budget == 0 {
                plan.throttled = true;
                break;
            }
            let avail = cluster_len(pos);
            if avail == 0 {
                break; // EOF or a hole ends speculation.
            }
            let mut take = (target - pos).min(avail as u64);
            if take > *budget {
                take = *budget;
                plan.throttled = true;
            }
            plan.runs.push(PrefetchRun {
                lbn: pos,
                blocks: take as u32,
                sieve: None,
            });
            *budget -= take;
            pos += take;
        }
        self.frontier = self.frontier.max(pos);
    }

    /// Strided mode: predict the next `distance` record starts at the
    /// confirmed period and cover them — by data sieving (one spanning
    /// run, gaps discarded) when the gaps are small, by exact list-I/O
    /// runs when they are not.
    fn plan_strided(
        &mut self,
        plan: &mut PrefetchPlan,
        cluster_len: &mut impl FnMut(u64) -> u32,
        budget: &mut u64,
    ) {
        let p = self.period.expect("strided mode has a confirmed period");
        let rec = (self.rec_len.max(1) as u64).min(p) as u32;
        let first_unseen = self.pred_frontier.max(self.run_start + p);
        let mut starts: Vec<u64> = (1..=self.distance as u64)
            .map(|k| self.run_start + k * p)
            .filter(|&s| s >= first_unseen)
            .collect();
        // Probe each predicted start; EOF or a hole closes the window.
        let mut lens: Vec<u32> = Vec::new();
        for &s in &starts {
            let avail = cluster_len(s);
            if avail == 0 {
                break;
            }
            lens.push(rec.min(avail));
        }
        starts.truncate(lens.len());
        // Sieving pays when one gap-spanning transfer displaces several
        // small ones; past that the gaps dominate and exact runs win.
        let sieving = p <= 2 * rec as u64;
        // Shrink the window from the far end until it fits the budget.
        while let (Some(&last_start), Some(&last_len)) = (starts.last(), lens.last()) {
            let need: u64 = if sieving {
                (last_start - starts[0]) + last_len as u64
            } else {
                lens.iter().map(|&l| l as u64).sum()
            };
            if need <= *budget {
                break;
            }
            plan.throttled = true;
            starts.pop();
            lens.pop();
        }
        let (Some(&last_start), Some(&first_start)) = (starts.last(), starts.first()) else {
            return;
        };
        if sieving {
            let span = (last_start - first_start) as u32 + lens[lens.len() - 1];
            *budget -= span as u64;
            plan.runs.push(PrefetchRun {
                lbn: first_start,
                blocks: span,
                sieve: Some((rec, p as u32)),
            });
        } else {
            for (&s, &l) in starts.iter().zip(&lens) {
                *budget -= l as u64;
                plan.runs.push(PrefetchRun {
                    lbn: s,
                    blocks: l,
                    sieve: None,
                });
            }
        }
        self.pred_frontier = self.pred_frontier.max(last_start + p);
    }
}

/// A per-stream prefetch engine: the policy selector the I/O path keys
/// by `StreamId`.
#[derive(Clone, Debug)]
pub enum Prefetcher {
    /// [`PrefetchPolicy::Off`] and [`PrefetchPolicy::Fixed`]: the
    /// paper's engine (disabled, respectively verbatim).
    Legacy(ReadAhead),
    /// [`PrefetchPolicy::Adaptive`].
    Adaptive(AdaptiveRa),
}

impl Prefetcher {
    /// Fresh state for one stream under `policy` on a mount whose I/O
    /// unit is `cluster_blocks`.
    pub fn new(policy: PrefetchPolicy, cluster_blocks: u32) -> Prefetcher {
        match policy {
            PrefetchPolicy::Off => Prefetcher::Legacy(ReadAhead::disabled()),
            PrefetchPolicy::Fixed => Prefetcher::Legacy(ReadAhead::new()),
            PrefetchPolicy::Adaptive => Prefetcher::Adaptive(AdaptiveRa::new(cluster_blocks)),
        }
    }

    /// Computes the I/O plan for an access (see
    /// [`AdaptiveRa::on_access`]). The legacy engines ignore pressure:
    /// their single-cluster speculation is the baseline being measured.
    pub fn on_access(
        &mut self,
        lbn: u64,
        cached: bool,
        cluster_len: impl FnMut(u64) -> u32,
        size_hint_blocks: u32,
        free_pages: u64,
        reserve: u64,
    ) -> PrefetchPlan {
        match self {
            Prefetcher::Legacy(ra) => {
                PrefetchPlan::from_legacy(ra.on_access(lbn, cached, cluster_len, size_hint_blocks))
            }
            Prefetcher::Adaptive(a) => a.on_access(
                lbn,
                cached,
                cluster_len,
                size_hint_blocks,
                free_pages,
                reserve,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLENTY: u64 = 1 << 20;

    fn uniform(maxcontig: u32, eof: u64) -> impl FnMut(u64) -> u32 {
        move |lbn| {
            if lbn >= eof {
                0
            } else {
                maxcontig.min((eof - lbn) as u32)
            }
        }
    }

    #[test]
    fn fixed_policy_matches_paper_engine_exactly() {
        let mut fixed = Prefetcher::new(PrefetchPolicy::Fixed, 3);
        let mut paper = ReadAhead::new();
        for (lbn, cached) in [(0u64, false), (1, true), (2, true), (3, true), (9, false)] {
            let got = fixed.on_access(lbn, cached, uniform(3, 1000), 0, PLENTY, 0);
            let want = paper.on_access(lbn, cached, uniform(3, 1000), 0);
            assert_eq!(got.sync, want.sync);
            assert_eq!(got.sequential, want.sequential);
            let runs: Vec<_> = got.runs.iter().map(|r| (r.lbn, r.blocks)).collect();
            let legacy: Vec<_> = want.readahead.iter().map(|r| (r.lbn, r.blocks)).collect();
            assert_eq!(runs, legacy);
            assert!(got.runs.iter().all(|r| r.sieve.is_none()));
        }
    }

    #[test]
    fn off_policy_reads_one_block_no_speculation() {
        let mut off = Prefetcher::new(PrefetchPolicy::Off, 8);
        for lbn in 0..5u64 {
            let p = off.on_access(lbn, false, uniform(8, 100), 0, PLENTY, 0);
            assert_eq!(p.sync.unwrap().blocks, 1);
            assert!(p.runs.is_empty());
        }
    }

    #[test]
    fn adaptive_ramps_distance_on_sequential_hits() {
        let mut a = AdaptiveRa::new(4);
        let mut last = 0;
        for lbn in 0..6u64 {
            let p = a.on_access(lbn, lbn != 0, uniform(4, 10_000), 0, PLENTY, 0);
            assert!(p.distance >= last, "distance fell on a hit streak");
            last = p.distance;
        }
        assert_eq!(last, MAX_DISTANCE, "streak long enough to hit the cap");
    }

    #[test]
    fn adaptive_backs_off_on_seek() {
        let mut a = AdaptiveRa::new(4);
        for lbn in 0..5u64 {
            a.on_access(lbn, lbn != 0, uniform(4, 10_000), 0, PLENTY, 0);
        }
        let before = a.distance();
        let p = a.on_access(5000, false, uniform(4, 10_000), 0, PLENTY, 0);
        assert_eq!(p.distance, (before / 2).max(1));
        assert!(p.runs.is_empty(), "a seek prefetches nothing");
    }

    #[test]
    fn adaptive_sequential_covers_ahead_without_gaps() {
        // The runs issued on a pure sequential scan are exact, ahead of
        // the reader, and never overlap.
        let mut a = AdaptiveRa::new(4);
        let mut covered = std::collections::BTreeSet::new();
        for lbn in 0..64u64 {
            let p = a.on_access(lbn, lbn != 0, uniform(4, 10_000), 0, PLENTY, 0);
            for r in &p.runs {
                assert!(r.sieve.is_none(), "sequential never sieves");
                assert!(r.lbn > lbn, "prefetch lies ahead of the reader");
                for b in r.lbn..r.lbn + r.blocks as u64 {
                    assert!(covered.insert(b), "block {b} prefetched twice");
                }
            }
        }
        assert!(covered.contains(&64), "coverage extends past the reader");
    }

    #[test]
    fn adaptive_detects_stride_and_prefetches_records() {
        // Records of 1 block every 16 blocks: after two identical jumps
        // the period is confirmed and future record starts get covered.
        // (Start away from 0 so the `nextr = 0` cold-start heuristic does
        // not count the first record as sequential.)
        let mut a = AdaptiveRa::new(4);
        let mut issued = std::collections::BTreeSet::new();
        for k in 0..8u64 {
            let lbn = 5 + k * 16;
            let p = a.on_access(lbn, issued.contains(&lbn), uniform(4, 10_000), 0, PLENTY, 0);
            for r in &p.runs {
                assert!(r.sieve.is_none(), "far-apart records use exact runs");
                for b in r.lbn..r.lbn + r.blocks as u64 {
                    issued.insert(b);
                }
            }
        }
        assert!(
            issued.contains(&(5 + 3 * 16)),
            "record starts are predicted after confirmation: {issued:?}"
        );
        // Every predicted block is a record start (nothing from the gaps).
        assert!(issued.iter().all(|b| (b - 5) % 16 == 0), "{issued:?}");
    }

    #[test]
    fn adaptive_sieves_close_records() {
        // 2-block records every 3 blocks: period (3) ≤ 2×record (4), so
        // the window is covered by one spanning run with a sieve pattern.
        let mut a = AdaptiveRa::new(4);
        let mut sieved = None;
        for k in 0..6u64 {
            let lbn = k * 3;
            let p = a.on_access(lbn, false, uniform(4, 10_000), 0, PLENTY, 0);
            let _ = a.on_access(lbn + 1, true, uniform(4, 10_000), 0, PLENTY, 0);
            if let Some(r) = p.runs.iter().find(|r| r.sieve.is_some()) {
                sieved = Some(*r);
            }
        }
        let r = sieved.expect("close records trigger data sieving");
        assert_eq!(r.sieve, Some((2, 3)));
        assert_eq!(r.lbn % 3, 0, "sieve run starts on a record boundary");
    }

    #[test]
    fn no_prefetch_below_reserve() {
        let mut a = AdaptiveRa::new(4);
        for lbn in 0..32u64 {
            let p = a.on_access(lbn, lbn != 0, uniform(4, 10_000), 0, 10, 10);
            assert!(p.runs.is_empty(), "no headroom, no speculation");
        }
        // Headroom of 3 pages: speculation is clipped to exactly that.
        let mut a = AdaptiveRa::new(4);
        let p = a.on_access(0, false, uniform(4, 10_000), 0, 13, 10);
        let total: u64 = p.runs.iter().map(|r| r.blocks as u64).sum();
        assert!(total <= 3, "prefetch {total} blocks exceeds headroom 3");
        assert!(p.throttled);
    }

    #[test]
    fn demoted_stride_returns_to_sequential() {
        let mut a = AdaptiveRa::new(4);
        // Confirm a stride of 8...
        for k in 0..4u64 {
            a.on_access(k * 8, false, uniform(4, 10_000), 0, PLENTY, 0);
        }
        // ...then go long-sequential from the last record start.
        let base = 3 * 8;
        let mut issued_sequential = false;
        for off in 1..40u64 {
            let p = a.on_access(base + off, true, uniform(4, 10_000), 0, PLENTY, 0);
            issued_sequential |= p.runs.iter().any(|r| r.sieve.is_none());
        }
        assert!(
            issued_sequential,
            "sequential coverage resumes once the stride is demoted"
        );
    }
}
