//! # clufs — the paper's contribution as reusable policy engines
//!
//! "Extent-like Performance from a UNIX File System" (McVoy & Kleiman,
//! USENIX Winter 1991) modifies UFS so sequential I/O moves in *clusters* of
//! contiguously allocated blocks rather than one block at a time — without
//! changing the on-disk format and without any user-visible interface.
//!
//! This crate holds the mechanisms of that change as pure, substrate-free
//! state machines, so they can be unit- and property-tested in isolation and
//! then wired into the `ufs` crate's `getpage`/`putpage` paths:
//!
//! - [`ReadAhead`] — the `nextr`/`nextrio` sequential predictor and cluster
//!   read-ahead planner (Figures 2, 3, 6). With `maxcontig = 1` it *is* the
//!   old per-block algorithm.
//! - [`DelayedWrite`] — the `delayoff`/`delaylen` accumulate-and-push write
//!   clustering engine (Figures 7, 8).
//! - [`FreeBehindPolicy`] — MRU-style page freeing for large sequential
//!   reads (the "page thrashing" fix).
//! - [`WriteThrottle`] — the per-file counting semaphore limiting dirty
//!   data in the disk queue (the fairness fix; 240 KB default).
//! - [`Prefetcher`] — the adaptive-readahead generalization: policy
//!   selector over the paper's engine and [`AdaptiveRa`], the
//!   distance-adaptive, stride-aware, pressure-coupled planner.
//! - [`Tuning`] — the knobs, with Figure 9's A/B/C/D presets.
//! - [`BmapCache`] — Further Work: cached `<lbn, pbn, len>` extent tuples.

pub mod bmap_cache;
pub mod delayed_write;
pub mod free_behind;
pub mod prefetch;
pub mod readahead;
pub mod throttle;
pub mod tuning;

pub use bmap_cache::{BmapCache, ExtentTuple};
pub use delayed_write::{DelayedWrite, WriteAction};
pub use free_behind::FreeBehindPolicy;
pub use prefetch::{
    AdaptiveRa, PrefetchPlan, PrefetchPolicy, PrefetchRun, Prefetcher, MAX_DISTANCE,
};
pub use readahead::{ReadAhead, ReadPlan, ReadRun};
pub use throttle::{WriteThrottle, WriteToken};
pub use tuning::{Tuning, BLOCK_SIZE, WRITE_LIMIT_BYTES};
