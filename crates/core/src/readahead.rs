//! The sequential read predictor and cluster read-ahead engine
//! (the paper's Figures 2, 3 and 6).
//!
//! The engine is a pure state machine over logical block numbers: `ufs_getpage`
//! feeds it each access plus a way to learn the contiguous cluster length at
//! a given block (`bmap`'s new length return), and it answers with the I/O
//! plan — which cluster to read synchronously and which to prefetch.
//!
//! The inode fields it models:
//!
//! - `nextr` — predicted next read, for sequential detection. Initialized
//!   to 0: "Starting read ahead at the beginning of the file turns out to be
//!   a beneficial heuristic."
//! - `nextrio` — where the next cluster read-ahead should trigger (the new
//!   code path). Set to "the current location plus the size of the current
//!   cluster".
//!
//! With `maxcontig = 1` the cluster algorithm degenerates to exactly the old
//! per-block read-ahead of Figure 3, which is how the old code path is
//! reproduced.

/// One planned read: a run of logically contiguous blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadRun {
    /// First logical block.
    pub lbn: u64,
    /// Number of blocks (≥ 1).
    pub blocks: u32,
}

/// The engine's answer for one access.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReadPlan {
    /// Cluster to read synchronously (the faulting block's cluster); `None`
    /// when the block is already cached.
    pub sync: Option<ReadRun>,
    /// Cluster to read ahead asynchronously.
    pub readahead: Option<ReadRun>,
    /// Whether this access was judged sequential.
    pub sequential: bool,
}

/// Per-file read-ahead state (lives in the in-core inode).
#[derive(Clone, Debug)]
pub struct ReadAhead {
    nextr: u64,
    nextrio: u64,
    enabled: bool,
}

impl Default for ReadAhead {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadAhead {
    /// Fresh state for a newly activated inode: `nextr = 0` predicts the
    /// first read at the start of the file.
    pub fn new() -> Self {
        ReadAhead {
            nextr: 0,
            nextrio: 0,
            enabled: true,
        }
    }

    /// Disables read-ahead entirely (ablation).
    pub fn disabled() -> Self {
        ReadAhead {
            enabled: false,
            ..Self::new()
        }
    }

    /// The predicted next sequential block (`nextr`).
    pub fn predicted_next(&self) -> u64 {
        self.nextr
    }

    /// Computes the I/O plan for an access to `lbn`.
    ///
    /// * `cached` — whether the requested block is already in the page cache.
    /// * `cluster_len(lbn)` — effective cluster length in blocks starting at
    ///   `lbn`: the contiguous-on-disk run length from `bmap`, capped by
    ///   `maxcontig` and clipped at end of file. Returning 0 means "nothing
    ///   there" (at/past EOF) and suppresses the read.
    /// * `size_hint_blocks` — Further Work "random clustering": the request
    ///   size passed down from `rdwr`, in blocks (0 = no hint). When the
    ///   access is *not* sequential but the hint is large, the sync read is
    ///   still clustered.
    pub fn on_access(
        &mut self,
        lbn: u64,
        cached: bool,
        mut cluster_len: impl FnMut(u64) -> u32,
        size_hint_blocks: u32,
    ) -> ReadPlan {
        let sequential = lbn == self.nextr;
        self.nextr = lbn + 1;

        let mut plan = ReadPlan {
            sequential,
            ..ReadPlan::default()
        };
        if !self.enabled {
            if !cached {
                let len = cluster_len(lbn).min(1);
                if len > 0 {
                    plan.sync = Some(ReadRun { lbn, blocks: 1 });
                }
            }
            return plan;
        }

        // The synchronous read: the whole cluster when sequential (the new
        // code path reads clusters; with maxcontig=1 this is one block), or
        // when a large request-size hint turns on "random clustering".
        let mut sync_len = 0u32;
        if !cached {
            let avail = cluster_len(lbn);
            sync_len = if sequential {
                avail
            } else if size_hint_blocks > 1 {
                avail.min(size_hint_blocks)
            } else {
                avail.min(1)
            };
            if sync_len > 0 {
                plan.sync = Some(ReadRun {
                    lbn,
                    blocks: sync_len,
                });
            }
        }

        if !sequential {
            // Mispredicted: fall back to waiting for the pattern to
            // re-establish. The next sequential hit will restart read-ahead.
            self.nextrio = lbn + sync_len.max(1) as u64;
            return plan;
        }

        // Sequential. Trigger a cluster read-ahead when this access begins a
        // new cluster region (lbn == nextrio), or when it performed a
        // synchronous cluster read (cold start / first touch).
        let trigger = lbn == self.nextrio || plan.sync.is_some();
        if trigger {
            // The cluster we are inside starts at `lbn` for planning
            // purposes; its length comes from bmap.
            let cur_len = if sync_len > 0 {
                sync_len
            } else {
                cluster_len(lbn)
            };
            if cur_len > 0 {
                let ra_start = lbn + cur_len as u64;
                let ra_len = cluster_len(ra_start);
                if ra_len > 0 {
                    plan.readahead = Some(ReadRun {
                        lbn: ra_start,
                        blocks: ra_len,
                    });
                }
                // "Setting the nextrio inode field to the current location
                // plus the size of the current cluster."
                self.nextrio = lbn + cur_len as u64;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uniform clustering: every block is in an extent of length
    /// `maxcontig` (aligned to the access), EOF at `eof` blocks.
    fn uniform(maxcontig: u32, eof: u64) -> impl FnMut(u64) -> u32 {
        move |lbn| {
            if lbn >= eof {
                0
            } else {
                maxcontig.min((eof - lbn) as u32)
            }
        }
    }

    #[test]
    fn figure3_block_mode_trace() {
        // maxcontig = 1 reproduces Figure 3 exactly:
        // fault 0: sync read 0, async read 1, nextr = 1
        // fault 1 (cached via RA): async read 2, nextr = 2
        // fault 2 (cached): async read 3, nextr = 3
        let mut ra = ReadAhead::new();
        let p0 = ra.on_access(0, false, uniform(1, 100), 0);
        assert_eq!(p0.sync, Some(ReadRun { lbn: 0, blocks: 1 }));
        assert_eq!(p0.readahead, Some(ReadRun { lbn: 1, blocks: 1 }));
        assert_eq!(ra.predicted_next(), 1);

        let p1 = ra.on_access(1, true, uniform(1, 100), 0);
        assert_eq!(p1.sync, None);
        assert_eq!(p1.readahead, Some(ReadRun { lbn: 2, blocks: 1 }));
        assert_eq!(ra.predicted_next(), 2);

        let p2 = ra.on_access(2, true, uniform(1, 100), 0);
        assert_eq!(p2.readahead, Some(ReadRun { lbn: 3, blocks: 1 }));
    }

    #[test]
    fn figure6_cluster_mode_trace() {
        // maxcontig = 3 reproduces Figure 6:
        // fault 0: sync 0,1,2; async 3,4,5; nextrio = 3
        // faults 1,2: nothing
        // fault 3: async 6,7,8; nextrio = 6
        // faults 4,5: nothing
        // fault 6: async 9,10,11; nextrio = 9
        let mut ra = ReadAhead::new();
        let mut len = uniform(3, 1000);

        let p0 = ra.on_access(0, false, &mut len, 0);
        assert_eq!(p0.sync, Some(ReadRun { lbn: 0, blocks: 3 }));
        assert_eq!(p0.readahead, Some(ReadRun { lbn: 3, blocks: 3 }));

        for lbn in [1u64, 2] {
            let p = ra.on_access(lbn, true, &mut len, 0);
            assert_eq!(p.sync, None, "page {lbn} is prefetched");
            assert_eq!(p.readahead, None, "page {lbn} triggers nothing");
        }

        let p3 = ra.on_access(3, true, &mut len, 0);
        assert_eq!(p3.sync, None, "page 3 was prefetched");
        assert_eq!(p3.readahead, Some(ReadRun { lbn: 6, blocks: 3 }));

        for lbn in [4u64, 5] {
            let p = ra.on_access(lbn, true, &mut len, 0);
            assert_eq!(p.readahead, None);
        }

        let p6 = ra.on_access(6, true, &mut len, 0);
        assert_eq!(p6.readahead, Some(ReadRun { lbn: 9, blocks: 3 }));
    }

    #[test]
    fn random_access_reads_single_block_without_readahead() {
        let mut ra = ReadAhead::new();
        // Touch 50 first (not the predicted 0): random.
        let p = ra.on_access(50, false, uniform(4, 1000), 0);
        assert!(!p.sequential);
        assert_eq!(p.sync, Some(ReadRun { lbn: 50, blocks: 1 }));
        assert_eq!(p.readahead, None);
    }

    #[test]
    fn sequentiality_reestablishes_after_miss() {
        let mut ra = ReadAhead::new();
        ra.on_access(50, false, uniform(2, 1000), 0); // Random.
        let p = ra.on_access(51, false, uniform(2, 1000), 0); // 51 == nextr.
        assert!(p.sequential);
        assert_eq!(p.sync, Some(ReadRun { lbn: 51, blocks: 2 }));
        assert_eq!(p.readahead, Some(ReadRun { lbn: 53, blocks: 2 }));
    }

    #[test]
    fn readahead_clipped_at_eof() {
        let mut ra = ReadAhead::new();
        // 4-block file, maxcontig 3: sync reads [0..3), readahead gets
        // only block 3.
        let p0 = ra.on_access(0, false, uniform(3, 4), 0);
        assert_eq!(p0.sync, Some(ReadRun { lbn: 0, blocks: 3 }));
        assert_eq!(p0.readahead, Some(ReadRun { lbn: 3, blocks: 1 }));
        // At the last cluster start, nothing lies beyond EOF.
        let p3 = ra.on_access(3, true, uniform(3, 4), 0);
        assert_eq!(p3.readahead, None);
    }

    #[test]
    fn varying_cluster_lengths_from_fragmentation() {
        // "The code that sets up the next read bases its calculations on the
        // returned rather than desired cluster size."
        let mut ra = ReadAhead::new();
        // bmap says: at 0 a 2-block extent, at 2 a 3-block extent, at 5...
        let mut len = |lbn: u64| match lbn {
            0 => 2u32,
            2 => 3,
            5 => 1,
            _ => 0,
        };
        let p0 = ra.on_access(0, false, &mut len, 0);
        assert_eq!(p0.sync, Some(ReadRun { lbn: 0, blocks: 2 }));
        assert_eq!(p0.readahead, Some(ReadRun { lbn: 2, blocks: 3 }));
        // nextrio = 2: the next trigger is at the start of that 3-block
        // cluster.
        let p1 = ra.on_access(1, true, &mut len, 0);
        assert_eq!(p1.readahead, None);
        let p2 = ra.on_access(2, true, &mut len, 0);
        assert_eq!(p2.readahead, Some(ReadRun { lbn: 5, blocks: 1 }));
    }

    #[test]
    fn old_filesystem_degenerates_to_block_at_a_time() {
        // "An old file system will always send back a cluster of one block
        // because of the rotational delays between each block."
        let mut ra = ReadAhead::new();
        let mut len = uniform(1, 1000);
        for lbn in 0..10u64 {
            let p = ra.on_access(lbn, lbn != 0, &mut len, 0);
            if lbn == 0 {
                assert_eq!(p.sync.unwrap().blocks, 1);
            }
            assert_eq!(
                p.readahead,
                Some(ReadRun {
                    lbn: lbn + 1,
                    blocks: 1
                }),
                "block mode prefetches one block every fault"
            );
        }
    }

    #[test]
    fn size_hint_clusters_random_reads() {
        // Further Work: "random reads of 20KB segments ... the request size
        // could be passed down ... as a hint to turn on clustering".
        let mut ra = ReadAhead::new();
        let p = ra.on_access(77, false, uniform(8, 1000), 3);
        assert!(!p.sequential);
        assert_eq!(
            p.sync,
            Some(ReadRun { lbn: 77, blocks: 3 }),
            "hint expands the sync read"
        );
        assert_eq!(p.readahead, None, "hint does not enable read-ahead");
    }

    #[test]
    fn disabled_engine_reads_one_block_only() {
        let mut ra = ReadAhead::disabled();
        let p = ra.on_access(0, false, uniform(8, 100), 0);
        assert_eq!(p.sync, Some(ReadRun { lbn: 0, blocks: 1 }));
        assert_eq!(p.readahead, None);
    }

    #[test]
    fn cached_sequential_run_inside_cluster_is_quiet() {
        // Once a cluster and its successor are in memory, intermediate
        // faults generate zero I/O — the CPU-saving claim.
        let mut ra = ReadAhead::new();
        let mut len = uniform(4, 1000);
        ra.on_access(0, false, &mut len, 0);
        let mut io_count = 0;
        for lbn in 1..4u64 {
            let p = ra.on_access(lbn, true, &mut len, 0);
            if p.sync.is_some() {
                io_count += 1;
            }
            if p.readahead.is_some() {
                io_count += 1;
            }
        }
        assert_eq!(io_count, 0, "pages 1..3 are covered by the prefetch");
    }
}
