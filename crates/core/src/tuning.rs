//! File system tuning parameters and the paper's Figure 9 configurations.

use crate::prefetch::PrefetchPolicy;

/// Tunable parameters controlling placement and I/O policy.
///
/// These correspond to the knobs discussed throughout the paper:
/// `maxcontig`/`rotdelay` steer the (unchanged) FFS allocator's placement,
/// and the boolean switches select between the old (SunOS 4.1) and new
/// (SunOS 4.1.1) code paths — the paper's test kernel had exactly such
/// "variables that enable and disable the old and new code".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tuning {
    /// Desired cluster size in file system blocks. "Previously, when
    /// rotdelay was zero, maxcontig had no meaning, but now it always
    /// indicates cluster size."
    pub maxcontig: u32,
    /// Placement gap between successive blocks, in milliseconds. The
    /// minimum non-zero value is one block time (4 ms for 8 KB blocks).
    pub rotdelay_ms: u32,
    /// `true` selects the clustered `getpage`/`putpage` implementation
    /// (SunOS 4.1.1); `false` the block-at-a-time code (SunOS 4.1).
    pub clustering: bool,
    /// Sequential read-ahead (both code paths have it; disabling is for
    /// ablation only).
    pub readahead: bool,
    /// MRU-style self-service page freeing for large sequential reads.
    pub free_behind: bool,
    /// Per-file limit (bytes) on dirty data in the disk queue; `None`
    /// reproduces the "one process locks down all of memory" behavior.
    pub write_limit: Option<u32>,
    /// Further Work: per-inode cache of `<lbn, pbn, len>` extent tuples.
    pub bmap_cache: bool,
    /// Further Work: use the request size passed down from `rdwr` as a
    /// hint to cluster apparently-random reads.
    pub random_cluster_hint: bool,
    /// Further Work: skip the `bmap` call on cache hits for files known to
    /// have no holes.
    pub ufs_hole_opt: bool,
    /// Device-error retries the I/O path attempts before surfacing
    /// `FsError::Io` (transient media errors clear under retry; latent
    /// ones and dead devices do not).
    pub io_retry_max: u32,
    /// Base backoff between retries, milliseconds; doubles per attempt.
    pub io_retry_backoff_ms: u32,
    /// Which prefetch engine the read path runs (only meaningful while
    /// `readahead` is true; `Fixed` is the paper's predictor).
    pub prefetch: PrefetchPolicy,
}

/// File system block size used throughout the reproduction (8 KB).
pub const BLOCK_SIZE: u32 = 8192;

/// The paper's per-file write limit: "currently 240KB".
pub const WRITE_LIMIT_BYTES: u32 = 240 * 1024;

impl Tuning {
    /// Figure 9 run "A": 120 KB clusters, no rotdelay, SunOS 4.1.1 code,
    /// free-behind and write limits on.
    pub fn config_a() -> Tuning {
        Tuning {
            maxcontig: 120 * 1024 / BLOCK_SIZE, // 15 blocks
            rotdelay_ms: 0,
            clustering: true,
            readahead: true,
            free_behind: true,
            write_limit: Some(WRITE_LIMIT_BYTES),
            bmap_cache: false,
            random_cluster_hint: false,
            ufs_hole_opt: false,
            io_retry_max: 4,
            io_retry_backoff_ms: 2,
            prefetch: PrefetchPolicy::Fixed,
        }
    }

    /// Figure 9 run "B": 8 KB blocks, 4 ms rotdelay, SunOS 4.1 code, but
    /// with the new free-behind and write-limit heuristics.
    pub fn config_b() -> Tuning {
        Tuning {
            maxcontig: 1,
            rotdelay_ms: 4,
            clustering: false,
            readahead: true,
            free_behind: true,
            write_limit: Some(WRITE_LIMIT_BYTES),
            bmap_cache: false,
            random_cluster_hint: false,
            ufs_hole_opt: false,
            io_retry_max: 4,
            io_retry_backoff_ms: 2,
            prefetch: PrefetchPolicy::Fixed,
        }
    }

    /// Figure 9 run "C": as "B" but without free-behind.
    pub fn config_c() -> Tuning {
        Tuning {
            free_behind: false,
            ..Self::config_b()
        }
    }

    /// Figure 9 run "D": a close approximation of stock SunOS 4.1 — no
    /// free-behind, no write limit, 1-block clusters, 4 ms rotdelay.
    pub fn config_d() -> Tuning {
        Tuning {
            free_behind: false,
            write_limit: None,
            ..Self::config_b()
        }
    }

    /// The shipped SunOS 4.1.1 default: as "A" but with 56 KB clusters
    /// ("56KB is used because there are still drivers out there with 16 bit
    /// limitations").
    pub fn sunos_411_default() -> Tuning {
        Tuning {
            maxcontig: 56 * 1024 / BLOCK_SIZE, // 7 blocks
            ..Self::config_a()
        }
    }

    /// The rejected "file system tuning" alternative: rotdelay 0 (to exploit
    /// track buffers) but still block-at-a-time I/O.
    pub fn tuning_only() -> Tuning {
        Tuning {
            rotdelay_ms: 0,
            ..Self::config_b()
        }
    }

    /// Desired cluster size in bytes.
    pub fn cluster_bytes(&self) -> u32 {
        self.maxcontig * BLOCK_SIZE
    }

    /// Effective cluster size in blocks for I/O planning: 1 when the old
    /// code path is selected.
    pub fn io_cluster_blocks(&self) -> u32 {
        if self.clustering {
            self.maxcontig.max(1)
        } else {
            1
        }
    }

    /// Placement gap in blocks for the allocator, given the block transfer
    /// time. A 4 ms rotdelay with 4 ms blocks means "skip one block slot".
    pub fn rotdelay_blocks(&self, block_time_ms: f64) -> u32 {
        if self.rotdelay_ms == 0 {
            0
        } else {
            (self.rotdelay_ms as f64 / block_time_ms).ceil() as u32
        }
    }
}

impl Default for Tuning {
    fn default() -> Self {
        Self::sunos_411_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_matrix() {
        // Reproduces Figure 9's columns exactly.
        let a = Tuning::config_a();
        assert_eq!(a.cluster_bytes(), 120 * 1024);
        assert_eq!(a.rotdelay_ms, 0);
        assert!(a.clustering && a.free_behind && a.write_limit.is_some());

        let b = Tuning::config_b();
        assert_eq!(b.cluster_bytes(), 8 * 1024);
        assert_eq!(b.rotdelay_ms, 4);
        assert!(!b.clustering && b.free_behind && b.write_limit.is_some());

        let c = Tuning::config_c();
        assert!(!c.free_behind && c.write_limit.is_some());

        let d = Tuning::config_d();
        assert!(!d.free_behind && d.write_limit.is_none());
    }

    #[test]
    fn shipped_default_is_56kb() {
        let t = Tuning::sunos_411_default();
        assert_eq!(t.cluster_bytes(), 56 * 1024);
        assert_eq!(t.maxcontig, 7);
    }

    #[test]
    fn io_cluster_collapses_without_clustering() {
        let mut t = Tuning::config_a();
        assert_eq!(t.io_cluster_blocks(), 15);
        t.clustering = false;
        assert_eq!(t.io_cluster_blocks(), 1);
    }

    #[test]
    fn rotdelay_blocks_rounds_up() {
        let b = Tuning::config_b();
        // 4 ms gap with ~4.2 ms blocks: one block slot.
        assert_eq!(b.rotdelay_blocks(4.17), 1);
        // 4 ms gap with 2 ms blocks: two block slots.
        assert_eq!(b.rotdelay_blocks(2.0), 2);
        // No rotdelay: contiguous.
        assert_eq!(Tuning::config_a().rotdelay_blocks(4.17), 0);
    }
}
