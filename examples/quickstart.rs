//! Quickstart: build a simulated SPARCstation-with-SCSI-disk world, mount
//! the clustered UFS, and watch cluster I/O happen.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clufs::Tuning;
use iobench::{paper_world, WorldOptions};
use simkit::Sim;
use vfs::{AccessMode, FileSystem, Vnode};

fn main() {
    // Everything runs inside a deterministic simulation with a virtual
    // clock; `run_until` drives the world until the async block finishes.
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        // The paper's measurement machine: 20 MHz SPARCstation 1, 8 MB of
        // memory, 400 MB SCSI disk with a track buffer — freshly formatted
        // and mounted with SunOS 4.1.1 tuning (120 KB clusters).
        let world = paper_world(&s, Tuning::config_a(), WorldOptions::default())
            .await
            .expect("build world");
        println!(
            "mounted: {} data blocks ({} MB), {} pages of memory",
            world.fs.capacity_blocks(),
            world.fs.capacity_blocks() * 8192 / (1 << 20),
            world.cache.total_pages()
        );

        // Write a 1 MB file through the ordinary write(2) path.
        let file = world.fs.create("demo/data.bin").await;
        // Oops: parent directory doesn't exist yet.
        assert!(file.is_err());
        world.fs.mkdir("demo").await.expect("mkdir");
        let file = world.fs.create("demo/data.bin").await.expect("create");
        let payload: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
        file.write(0, &payload, AccessMode::Copy)
            .await
            .expect("write");
        file.fsync().await.expect("fsync");
        println!("wrote {} bytes at virtual time {}", payload.len(), s.now());

        // Where did the allocator put it? (Contiguously, modulo the
        // indirect block — this is what makes clustering possible.)
        println!("physical layout (lbn, pbn, blocks):");
        for ext in file.extents().await.expect("extents") {
            println!("  lbn {:4} -> pbn {:6}  x{}", ext.0, ext.1, ext.2);
        }

        // Drop the cache and read it back sequentially: watch the cluster
        // machinery move 15 blocks per disk I/O.
        world.cache.invalidate_vnode(file.id(), 0);
        world.fs.reset_stats();
        world.disk.reset_stats();
        let t0 = s.now();
        let back = file
            .read(0, payload.len(), AccessMode::Copy)
            .await
            .expect("read");
        assert_eq!(back, payload, "data round-trips");
        let elapsed = s.now().duration_since(t0);
        let fs_stats = world.fs.stats();
        let disk = world.disk.stats();
        println!(
            "\nsequential re-read: {} KB in {} = {:.0} KB/s",
            payload.len() / 1024,
            elapsed,
            payload.len() as f64 / 1024.0 / elapsed.as_secs_f64()
        );
        println!(
            "  {} blocks moved in {} disk reads ({} sync + {} read-ahead clusters)",
            fs_stats.blocks_read, disk.reads, fs_stats.sync_reads, fs_stats.readaheads
        );
        println!(
            "  getpage calls: {} ({} served from cache)",
            fs_stats.getpage_calls, fs_stats.getpage_hits
        );
        println!("  CPU charged: {}", world.cpu.busy());

        // Clean unmount leaves a consistent image.
        world.fs.clone().unmount().await.expect("unmount");
        let report = ufs::fsck(&*world.disk).await.expect("fsck");
        println!(
            "\nfsck: {} files, {} dirs, {} blocks in use, clean = {}",
            report.files,
            report.dirs,
            report.used_blocks,
            report.is_clean()
        );
        assert!(report.is_clean());
    });
}
