//! The variable-geometry argument: "consider a variable geometry drive (a
//! drive that has more blocks on the outer tracks than on the inner
//! tracks). Such a drive may have different values for the optimal extent
//! size at different locations." — the paper's case for why a user-chosen
//! extent size cannot be right everywhere.
//!
//! This example measures sequential read throughput on a zoned drive at the
//! outer, middle and inner zones, for several transfer ("extent") sizes,
//! and reports what fraction of that zone's own media bandwidth each size
//! achieves. The size that looks adequate on the outer tracks leaves
//! bandwidth on the table inside, and vice versa.
//!
//! ```text
//! cargo run --release --example zoned_disk
//! ```

use diskmodel::{BlockDevice, Disk, DiskParams, Geometry, Zone};
use simkit::{Sim, SimDuration};

/// A 1990s-flavored three-zone drive: 2.5 MB/s media rate outside,
/// 1.5 MB/s inside.
fn zoned_drive() -> Geometry {
    Geometry {
        sector_size: 512,
        sectors_per_track: 0,
        heads: 9,
        cylinders: 1200,
        rpm: 3600,
        track_skew: 4,
        cyl_skew: 16,
        zones: Some(vec![
            Zone {
                start_cyl: 0,
                sectors_per_track: 80,
            },
            Zone {
                start_cyl: 400,
                sectors_per_track: 64,
            },
            Zone {
                start_cyl: 800,
                sectors_per_track: 48,
            },
        ]),
    }
}

/// Sequential read of 4 MB starting at `lba`, in `unit` -sector transfers
/// pipelined two deep (like cluster read-ahead). Returns KB/s.
fn read_rate(start_lba: u64, unit_sectors: u32) -> f64 {
    let sim = Sim::new();
    let disk = Disk::new(
        &sim,
        DiskParams {
            geometry: zoned_drive(),
            ..DiskParams::sun0424()
        },
    );
    let d = disk.clone();
    let s = sim.clone();
    let elapsed: SimDuration = sim.run_until(async move {
        let total_sectors = (4 << 20) / 512u64;
        let t0 = s.now();
        let mut submitted = 0u64;
        let mut pending = std::collections::VecDeque::new();
        while submitted < total_sectors || !pending.is_empty() {
            while submitted < total_sectors && pending.len() < 2 {
                let n = unit_sectors.min((total_sectors - submitted) as u32);
                pending.push_back(d.submit_read(start_lba + submitted, n));
                submitted += n as u64;
            }
            if let Some(h) = pending.pop_front() {
                h.wait().await;
            }
        }
        s.now().duration_since(t0)
    });
    (4u64 << 20) as f64 / 1024.0 / elapsed.as_secs_f64()
}

fn main() {
    let g = zoned_drive();
    let spc = |cyl: u32| g.spt(cyl) as u64 * g.heads as u64;
    // Start LBAs at the head of each zone.
    let outer = 0u64;
    let middle: u64 = (0..400).map(&spc).sum();
    let inner: u64 = (0..800).map(&spc).sum();
    let media = |cyl: u32| g.spt(cyl) as f64 * 512.0 * 3600.0 / 60.0 / 1024.0; // KB/s

    println!(
        "sequential read rate by zone and transfer size (KB/s, % of that\n\
         zone's media rate). The paper's point: no one extent size is\n\
         'right' at every disk location.\n"
    );
    println!(
        "{:>12}  {:>18}  {:>18}  {:>18}",
        "extent", "outer (2.5MB/s)", "middle (2.0MB/s)", "inner (1.5MB/s)"
    );
    for unit_kb in [8u32, 24, 56, 120, 240] {
        let unit = unit_kb * 2; // sectors
        let rates = [
            (read_rate(outer, unit), media(0)),
            (read_rate(middle, unit), media(400)),
            (read_rate(inner, unit), media(800)),
        ];
        let cells: Vec<String> = rates
            .iter()
            .map(|(r, m)| format!("{:>6.0} ({:>3.0}%)", r, r / m * 100.0))
            .collect();
        println!(
            "{:>10}KB  {:>18}  {:>18}  {:>18}",
            unit_kb, cells[0], cells[1], cells[2]
        );
    }
    println!(
        "\nan extent size tuned to reach ~90% of bandwidth on the inner zone\n\
         wastes the outer zone's extra sectors per revolution; the clustered\n\
         UFS sidesteps the question by letting bmap report whatever run the\n\
         allocator actually achieved, wherever the file landed."
    );
}
