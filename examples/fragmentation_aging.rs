//! The allocator-contiguity study, as a runnable scenario: "filling up the
//! last 15% of a heavily fragmented /home partition ... the average extent
//! size was 62KB in a 16MB file". Clustering depends on the allocator
//! doing well even on aged disks — this is the experiment that convinced
//! the authors not to add preallocation.
//!
//! ```text
//! cargo run --release --example fragmentation_aging
//! ```

use clufs::Tuning;
use iobench::aging::{age_filesystem, probe_extents, AgingOptions};
use iobench::{paper_world, WorldOptions};
use simkit::Sim;

fn main() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        // Fresh file system: the best case.
        let world = paper_world(&s, Tuning::config_a(), WorldOptions::default())
            .await
            .expect("world");
        let best = probe_extents(&world, "big.dat", 13 << 20)
            .await
            .expect("probe");
        println!(
            "empty fs:  {:>5.1} MB file in {:>3} extents, mean {:>6.0} KB, max {:>6} KB",
            best.file_bytes as f64 / 1048576.0,
            best.extents,
            best.mean_extent_bytes / 1024.0,
            best.max_extent_bytes / 1024
        );

        // A second world, aged like a /home partition.
        let world2 = paper_world(&s, Tuning::config_a(), WorldOptions::default())
            .await
            .expect("world");
        println!("\naging a second file system (create/remove churn)...");
        let survivors = age_filesystem(
            &world2,
            AgingOptions {
                target_fill: 0.88,
                rounds: 5,
                seed: 0xA6E,
            },
        )
        .await
        .expect("aging");
        let free_pct = world2.fs.free_blocks() as f64 / world2.fs.capacity_blocks() as f64 * 100.0;
        println!("aged: {survivors} files survive, {free_pct:.0}% free\n");

        let worst = probe_extents(&world2, "home/big.dat", 16 << 20)
            .await
            .expect("probe");
        println!(
            "aged fs:   {:>5.1} MB file in {:>3} extents, mean {:>6.0} KB, max {:>6} KB",
            worst.file_bytes as f64 / 1048576.0,
            worst.extents,
            worst.mean_extent_bytes / 1024.0,
            worst.max_extent_bytes / 1024
        );
        println!(
            "\npaper reports: best case 1.5 MB mean extents (13 MB file);\n\
             worst case 62 KB mean extents (16 MB file on a fragmented /home)."
        );
        println!(
            "\nthe clustered read path adapts per-bmap: even 62 KB extents give\n\
             ~8-block clusters, so aged disks degrade gracefully rather than\n\
             falling back to block-at-a-time I/O."
        );
    });
}
