//! The paper's motivating application: "Applications such as video and
//! sound require much higher data rates than are available today through
//! UFS."
//!
//! A player must consume frames at a fixed rate; every time the file system
//! cannot deliver the next frame by its deadline, the stream stutters.
//! This example plays the same "video" off the old (SunOS 4.1) and new
//! (4.1.1 clustered) file systems and counts dropped frames.
//!
//! ```text
//! cargo run --release --example video_stream
//! ```

use clufs::Tuning;
use iobench::{paper_world, WorldOptions};
use simkit::{Sim, SimDuration};
use vfs::{AccessMode, FileSystem, Vnode};

/// One video: ~34 seconds at ~10.5 frames/s, 90 KB per frame (≈950 KB/s —
/// above the old UFS's ~880 KB/s sequential ceiling, comfortably inside
/// the clustered ~1.6 MB/s).
const FRAMES: usize = 360;
const FRAME_BYTES: usize = 90 * 1024;
const FRAME_PERIOD_MS: u64 = 95;
/// Frames buffered before playback starts (every real player does this).
const WARMUP_FRAMES: usize = 12;

fn play(label: &str, tuning: Tuning) {
    let sim = Sim::new();
    let s = sim.clone();
    let (dropped, rebuffer) = sim.run_until(async move {
        let world = paper_world(&s, tuning, WorldOptions::default())
            .await
            .expect("world");
        // Lay the movie down on disk, then flush the cache: playback must
        // stream from the platters.
        let movie = world.fs.create("movie.vid").await.expect("create");
        let frame: Vec<u8> = (0..FRAME_BYTES).map(|i| (i % 250) as u8).collect();
        for i in 0..FRAMES {
            movie
                .write((i * FRAME_BYTES) as u64, &frame, AccessMode::Copy)
                .await
                .expect("write");
        }
        movie.fsync().await.expect("fsync");
        world.cache.invalidate_vnode(movie.id(), 0);

        // Play like a real player: the reader runs up to WARMUP_FRAMES
        // ahead of the display clock (a jitter buffer); frame i is due on
        // screen at start + (i + WARMUP_FRAMES) * period. A frame whose
        // read completes after its display time is dropped.
        let mut dropped = 0usize;
        let mut worst = SimDuration::ZERO;
        let period = SimDuration::from_millis(FRAME_PERIOD_MS);
        let start = s.now();
        for i in 0..FRAMES {
            // Cap the read lead: do not fetch frame i before its slot.
            let fetch_at = start + period * i as u64;
            if s.now() < fetch_at {
                s.sleep(fetch_at.duration_since(s.now())).await;
            }
            let data = movie
                .read((i * FRAME_BYTES) as u64, FRAME_BYTES, AccessMode::Copy)
                .await
                .expect("read");
            assert_eq!(data.len(), FRAME_BYTES);
            let display = start + period * (i + WARMUP_FRAMES) as u64;
            let now = s.now();
            if now > display {
                dropped += 1;
                let late = now.duration_since(display);
                if late > worst {
                    worst = late;
                }
            }
        }
        (dropped, worst)
    });
    println!("{label:30} dropped {dropped:3}/{FRAMES} frames, worst lateness {rebuffer}");
}

fn main() {
    println!(
        "streaming {} KB/s of video from disk ({} KB frames @ {} ms):\n",
        FRAME_BYTES as u64 * 1000 / FRAME_PERIOD_MS / 1024,
        FRAME_BYTES / 1024,
        FRAME_PERIOD_MS
    );
    play("SunOS 4.1 (block at a time)", Tuning::config_d());
    play("SunOS 4.1.1 (120KB clusters)", Tuning::config_a());
}
