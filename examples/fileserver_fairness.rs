//! The fairness problem: "A single process can lock down all of memory by
//! writing a large file ... a large process dumping core can cause the
//! system to be temporarily unusable."
//!
//! A "core dumper" writes a huge file flat out while an interactive user
//! tries to do small edits. Every open file carries a [`vfs::StreamId`],
//! so the latency observations and the per-stream registry metrics
//! (`disk.sectors_*{stream=N}`, `core.throttle_stalls{stream=N}`) say
//! exactly which stream paid and which stream was throttled — with and
//! without the paper's per-file write limit.
//!
//! ```text
//! cargo run --release --example fileserver_fairness
//! ```

use clufs::Tuning;
use iobench::{paper_world, WorldOptions};
use simkit::{Sim, SimDuration};
use vfs::{AccessMode, FileSystem, Vnode};

/// Editor op latency buckets, in microseconds (1 ms .. 1 s).
const LAT_EDGES_US: [u64; 8] = [
    1_000, 2_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000,
];

fn run(label: &str, write_limit: Option<u32>) {
    let sim = Sim::new();
    let s = sim.clone();
    let (dumper_rate, dumper_stream, editor_stream, op_lat) = sim.run_until(async move {
        let tuning = Tuning {
            write_limit,
            ..Tuning::config_a()
        };
        let world = paper_world(&s, tuning, WorldOptions::default())
            .await
            .expect("world");

        // The core dumper: 24 MB written as fast as the kernel accepts it.
        let dumper_fs = world.fs.clone();
        let s2 = s.clone();
        let dumper = s.spawn(async move {
            let f = dumper_fs.create("core").await.expect("create");
            let chunk = vec![0xDE; 64 * 1024];
            let t0 = s2.now();
            for i in 0..(24 << 20) / chunk.len() {
                f.write((i * chunk.len()) as u64, &chunk, AccessMode::Copy)
                    .await
                    .expect("write");
            }
            f.fsync().await.expect("fsync");
            let rate = (24 << 20) as f64 / 1024.0 / s2.now().duration_since(t0).as_secs_f64();
            (rate, f.stream().as_u32())
        });

        // The interactive user: every 400 ms, save a small draft and
        // reload a 256 KB document (an editor's autosave + redisplay).
        // Reloading needs three dozen page allocations — the operation the
        // core dump starves when every page in the machine is dirty and
        // locked in the disk queue.
        world.fs.mkdir("home").await.expect("mkdir");
        let doc = world.fs.create("home/thesis.txt").await.expect("create");
        let editor_stream = doc.stream().as_u32();
        let op_lat =
            s.stats()
                .stream_histogram("fairness.editor_op_us", editor_stream, &LAT_EDGES_US);
        for i in 0..16u64 {
            doc.write(i * 256 * 1024, &vec![7u8; 256 * 1024], AccessMode::Copy)
                .await
                .expect("seed");
        }
        doc.fsync().await.expect("seed fsync");
        for i in 0..30u64 {
            s.sleep(SimDuration::from_millis(400)).await;
            let t0 = s.now();
            let f = world
                .fs
                .create(&format!("home/draft{}.txt", i % 4))
                .await
                .expect("create");
            f.write(0, &[3u8; 4096], AccessMode::Copy)
                .await
                .expect("write");
            f.fsync().await.expect("fsync");
            // A different 256 KB window each time: these pages are cold,
            // so redisplay must allocate three dozen pages right now.
            let back = doc
                .read((i % 16) * 256 * 1024, 256 * 1024, AccessMode::Copy)
                .await
                .expect("read");
            assert_eq!(back.len(), 256 * 1024);
            op_lat.observe(s.now().duration_since(t0).as_nanos() / 1_000);
        }
        let (dumper_rate, dumper_stream) = dumper.await;
        (dumper_rate, dumper_stream, editor_stream, op_lat)
    });

    // The histogram carries the latency distribution; the highest occupied
    // bucket bounds the worst op.
    let worst = match op_lat
        .bucket_counts()
        .iter()
        .rposition(|&n| n > 0)
        .expect("observed ops")
    {
        i if i < LAT_EDGES_US.len() => format!("<= {:.0} ms", LAT_EDGES_US[i] as f64 / 1_000.0),
        _ => "> 1 s".to_string(),
    };
    println!(
        "{label:28} editor op latency: mean {:.1} ms over {} ops, worst {worst}; dumper ran at {dumper_rate:.0} KB/s",
        op_lat.mean() / 1_000.0,
        op_lat.count(),
    );
    let st = sim.stats();
    let per = |base: &str, stream: u32| {
        st.stream_counter_values(base)
            .into_iter()
            .find(|&(id, _)| id == stream)
            .map(|(_, v)| v)
            .unwrap_or(0)
    };
    for (who, id) in [("dumper", dumper_stream), ("editor doc", editor_stream)] {
        println!(
            "  {who:10} stream {id}: {:5} KB written, {:5} KB read, {} throttle stalls",
            per("disk.sectors_written", id) / 2,
            per("disk.sectors_read", id) / 2,
            per("core.throttle_stalls", id),
        );
    }
}

fn main() {
    println!("interactive latency under a 24 MB core dump:\n");
    run("no write limit (old 4.1)", None);
    run("240KB write limit (4.1.1)", Some(240 * 1024));
}
