//! The fairness problem: "A single process can lock down all of memory by
//! writing a large file ... a large process dumping core can cause the
//! system to be temporarily unusable."
//!
//! A "core dumper" writes a huge file flat out while an interactive user
//! tries to do small edits. We measure the interactive user's operation
//! latencies with and without the paper's per-file write limit.
//!
//! ```text
//! cargo run --release --example fileserver_fairness
//! ```

use clufs::Tuning;
use iobench::{paper_world, WorldOptions};
use simkit::{Sim, SimDuration};
use vfs::{AccessMode, FileSystem, Vnode};

fn run(label: &str, write_limit: Option<u32>) {
    let sim = Sim::new();
    let s = sim.clone();
    let (mean, worst, dumper_rate) = sim.run_until(async move {
        let tuning = Tuning {
            write_limit,
            ..Tuning::config_a()
        };
        let world = paper_world(&s, tuning, WorldOptions::default())
            .await
            .expect("world");

        // The core dumper: 24 MB written as fast as the kernel accepts it.
        let dumper_fs = world.fs.clone();
        let s2 = s.clone();
        let dumper = s.spawn(async move {
            let f = dumper_fs.create("core").await.expect("create");
            let chunk = vec![0xDE; 64 * 1024];
            let t0 = s2.now();
            for i in 0..(24 << 20) / chunk.len() {
                f.write((i * chunk.len()) as u64, &chunk, AccessMode::Copy)
                    .await
                    .expect("write");
            }
            f.fsync().await.expect("fsync");
            (24 << 20) as f64 / 1024.0 / s2.now().duration_since(t0).as_secs_f64()
        });

        // The interactive user: every 400 ms, save a small draft and
        // reload a 256 KB document (an editor's autosave + redisplay).
        // Reloading needs three dozen page allocations — the operation the
        // core dump starves when every page in the machine is dirty and
        // locked in the disk queue.
        let mut latencies = Vec::new();
        world.fs.mkdir("home").await.expect("mkdir");
        let doc = world.fs.create("home/thesis.txt").await.expect("create");
        for i in 0..16u64 {
            doc.write(i * 256 * 1024, &vec![7u8; 256 * 1024], AccessMode::Copy)
                .await
                .expect("seed");
        }
        doc.fsync().await.expect("seed fsync");
        for i in 0..30u64 {
            s.sleep(SimDuration::from_millis(400)).await;
            let t0 = s.now();
            let f = world
                .fs
                .create(&format!("home/draft{}.txt", i % 4))
                .await
                .expect("create");
            f.write(0, &[3u8; 4096], AccessMode::Copy)
                .await
                .expect("write");
            f.fsync().await.expect("fsync");
            // A different 256 KB window each time: these pages are cold,
            // so redisplay must allocate three dozen pages right now.
            let back = doc
                .read((i % 16) * 256 * 1024, 256 * 1024, AccessMode::Copy)
                .await
                .expect("read");
            assert_eq!(back.len(), 256 * 1024);
            latencies.push(s.now().duration_since(t0));
        }
        let dumper_rate = dumper.await;
        let worst = latencies.iter().copied().max().unwrap();
        let mean: SimDuration =
            latencies.iter().copied().sum::<SimDuration>() / latencies.len() as u64;
        (mean, worst, dumper_rate)
    });
    println!(
        "{label:28} editor op latency: mean {mean}, worst {worst}; dumper ran at {dumper_rate:.0} KB/s"
    );
}

fn main() {
    println!("interactive latency under a 24 MB core dump:\n");
    run("no write limit (old 4.1)", None);
    run("240KB write limit (4.1.1)", Some(240 * 1024));
}
