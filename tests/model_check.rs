//! Model-based property testing: drive the full UFS stack with random
//! operation sequences and check it against a trivial in-memory model
//! (name → bytes). After every sequence the on-disk image must also pass
//! fsck. This is the broadest correctness net in the repository: it
//! exercises allocation, holes, truncation, clustering, the page cache,
//! the pageout daemon and the cleaner all at once.

use std::collections::HashMap;

use clufs::Tuning;
use proptest::prelude::*;
use simkit::Sim;
use ufs::build_test_world;
use vfs::{AccessMode, FileSystem, FsError, Vnode};

/// One step of the workload.
#[derive(Clone, Debug)]
enum Op {
    Create(u8),
    /// Write `len` bytes of `seed` at `off` into file `id`.
    Write {
        id: u8,
        off: u32,
        len: u16,
        seed: u8,
    },
    /// Read `len` bytes at `off` from file `id` and compare to the model.
    Read {
        id: u8,
        off: u32,
        len: u16,
    },
    Truncate {
        id: u8,
        size: u32,
    },
    Remove(u8),
    Fsync(u8),
    SyncAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Offsets up to ~400 KB and writes up to 32 KB keep the total inside
    // the small test disk while still crossing the indirect boundary
    // (96 KB) and the cache size (256 KB).
    prop_oneof![
        (0u8..4).prop_map(Op::Create),
        (0u8..4, 0u32..400_000, 1u16..32_768, any::<u8>())
            .prop_map(|(id, off, len, seed)| Op::Write { id, off, len, seed }),
        (0u8..4, 0u32..450_000, 1u16..32_768).prop_map(|(id, off, len)| Op::Read { id, off, len }),
        (0u8..4, 0u32..450_000).prop_map(|(id, size)| Op::Truncate { id, size }),
        (0u8..4).prop_map(Op::Remove),
        (0u8..4).prop_map(Op::Fsync),
        Just(Op::SyncAll),
    ]
}

fn fill(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

fn run_sequence(ops: Vec<Op>, tuning: Tuning) {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, tuning).await.unwrap();
        // The reference model: file contents by name.
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Create(id) => {
                    let f = w.fs.create(&format!("f{id}")).await.unwrap();
                    assert_eq!(f.size(), 0, "create truncates");
                    model.insert(id, Vec::new());
                }
                Op::Write { id, off, len, seed } => {
                    let Some(content) = model.get_mut(&id) else {
                        continue;
                    };
                    let f = w.fs.open(&format!("f{id}")).await.unwrap();
                    let data = fill(len as usize, seed);
                    match f.write(off as u64, &data, AccessMode::Copy).await {
                        Ok(()) => {
                            let end = off as usize + len as usize;
                            if content.len() < end {
                                content.resize(end, 0);
                            }
                            content[off as usize..end].copy_from_slice(&data);
                        }
                        Err(FsError::NoSpace) => { /* Model unchanged. */ }
                        Err(e) => panic!("write failed: {e}"),
                    }
                }
                Op::Read { id, off, len } => {
                    let Some(content) = model.get(&id) else {
                        continue;
                    };
                    let f = w.fs.open(&format!("f{id}")).await.unwrap();
                    assert_eq!(f.size(), content.len() as u64, "size agrees");
                    let got = f
                        .read(off as u64, len as usize, AccessMode::Copy)
                        .await
                        .unwrap();
                    let expect: &[u8] = if (off as usize) < content.len() {
                        &content[off as usize..content.len().min(off as usize + len as usize)]
                    } else {
                        &[]
                    };
                    assert_eq!(got, expect, "read mismatch f{id} @{off}+{len}");
                }
                Op::Truncate { id, size } => {
                    let Some(content) = model.get_mut(&id) else {
                        continue;
                    };
                    let f = w.fs.open(&format!("f{id}")).await.unwrap();
                    f.truncate(size as u64).await.unwrap();
                    if (size as usize) < content.len() {
                        content.truncate(size as usize);
                    } else {
                        content.resize(size as usize, 0); // Hole extension.
                    }
                }
                Op::Remove(id) => {
                    if model.remove(&id).is_some() {
                        w.fs.remove(&format!("f{id}")).await.unwrap();
                        assert_eq!(
                            w.fs.open(&format!("f{id}")).await.err(),
                            Some(FsError::NotFound)
                        );
                    }
                }
                Op::Fsync(id) => {
                    if model.contains_key(&id) {
                        let f = w.fs.open(&format!("f{id}")).await.unwrap();
                        f.fsync().await.unwrap();
                    }
                }
                Op::SyncAll => {
                    w.fs.sync().await.unwrap();
                }
            }
        }
        // Final: full contents agree, then the image checks out on disk.
        for (id, content) in &model {
            let f = w.fs.open(&format!("f{id}")).await.unwrap();
            let got = f.read(0, content.len(), AccessMode::Copy).await.unwrap();
            assert_eq!(&got, content, "final content f{id}");
        }
        w.cache.assert_consistent();
        w.fs.clone().unmount().await.unwrap();
        let report = ufs::fsck(&*w.disk).await.unwrap();
        assert!(report.is_clean(), "fsck: {:?}", report.errors);
        assert_eq!(report.files as usize, model.len());
    });
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // Each case simulates a full world; keep CI time sane.
        .. ProptestConfig::default()
    })]

    /// The clustered file system agrees with the model under arbitrary
    /// operation sequences, and leaves a clean image.
    #[test]
    fn clustered_fs_matches_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_sequence(ops, Tuning::config_a());
    }

    /// So does the old block-at-a-time path (same on-disk format!).
    #[test]
    fn block_fs_matches_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_sequence(ops, Tuning::config_d());
    }
}

/// Cross-path check: an image written by the clustered code must read back
/// identically under the old code, and vice versa — the "no on-disk format
/// change" constraint, verified bidirectionally.
#[test]
fn images_are_interchangeable_between_code_paths() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let data = fill(300_000, 42);
        let f = w.fs.create("cross").await.unwrap();
        f.write(0, &data, AccessMode::Copy).await.unwrap();
        w.fs.clone().unmount().await.unwrap();

        // Remount the same disk with the OLD code path. (Each fresh cache
        // needs a pageout daemon or large reads exhaust its 32 pages.)
        let cpu = simkit::Cpu::new(&s);
        let cache = pagecache::PageCache::new(&s, pagecache::PageCacheParams::small_test());
        let (_d1, rx1) = pagecache::PageoutDaemon::spawn(
            &s,
            &cache,
            None,
            pagecache::PageoutParams::small_test(),
        );
        std::mem::forget(rx1);
        let mut params = ufs::UfsParams::test(Tuning::config_d());
        params.mount_id = 2;
        let old = ufs::Ufs::mount(&s, &cpu, &cache, &w.disk, params, None)
            .await
            .unwrap();
        let f2 = old.open("cross").await.unwrap();
        let back = f2.read(0, data.len(), AccessMode::Copy).await.unwrap();
        assert_eq!(back, data);
        // Append under the old path, remount under the new, verify.
        f2.write(data.len() as u64, &fill(50_000, 7), AccessMode::Copy)
            .await
            .unwrap();
        old.clone().unmount().await.unwrap();

        let cache2 = pagecache::PageCache::new(&s, pagecache::PageCacheParams::small_test());
        let (_d2, rx2) = pagecache::PageoutDaemon::spawn(
            &s,
            &cache2,
            None,
            pagecache::PageoutParams::small_test(),
        );
        std::mem::forget(rx2);
        let mut params = ufs::UfsParams::test(Tuning::config_a());
        params.mount_id = 3;
        let newer = ufs::Ufs::mount(&s, &cpu, &cache2, &w.disk, params, None)
            .await
            .unwrap();
        let f3 = newer.open("cross").await.unwrap();
        assert_eq!(f3.size(), 350_000);
        let tail = f3
            .read(data.len() as u64, 50_000, AccessMode::Copy)
            .await
            .unwrap();
        assert_eq!(tail, fill(50_000, 7));
        let report = ufs::fsck(&*w.disk).await.unwrap();
        // Mounted (not cleanly unmounted) but structurally sound after the
        // old mount's unmount; the new mount dirtied only the clean flag.
        assert!(
            report.errors.is_empty(),
            "cross-path image errors: {:?}",
            report.errors
        );
    });
}
