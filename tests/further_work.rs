//! Integration tests for the paper's "Further Work" features, which this
//! reproduction implements as optional extensions.

use clufs::Tuning;
use iobench::{paper_world, WorldOptions};
use simkit::Sim;
use vfs::{AccessMode, FileSystem, Vnode};

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_add(seed)).collect()
}

#[test]
fn bmap_cache_cuts_translations() {
    // "A small cache in the inode could reduce the cost of bmap
    // substantially."
    let bmap_counts = |enable: bool| -> (u64, u64) {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let w = paper_world(
                &s,
                Tuning::config_a(),
                WorldOptions {
                    full_scale: false,
                    bmap_cache: enable,
                    ..WorldOptions::default()
                },
            )
            .await
            .unwrap();
            let f = w.fs.create("f").await.unwrap();
            f.write(0, &pattern(2 << 20, 1), AccessMode::Copy)
                .await
                .unwrap();
            f.fsync().await.unwrap();
            w.cache.invalidate_vnode(f.id(), 0);
            w.fs.reset_stats();
            f.read(0, 2 << 20, AccessMode::Copy).await.unwrap();
            let st = w.fs.stats();
            (st.bmap_calls, st.bmap_cache_hits)
        })
    };
    let (without, _) = bmap_counts(false);
    let (with, hits) = bmap_counts(true);
    assert!(hits > 0, "cache should be hit");
    assert!(
        with < without,
        "bmap cache should cut real translations: {with} vs {without}"
    );
}

#[test]
fn ufs_hole_opt_skips_bmap_on_cache_hits() {
    // "One possible solution is to remember whether the file has holes and
    // do the bmap only if the page is not in memory or if the file has
    // holes."
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = paper_world(
            &s,
            Tuning::config_a(),
            WorldOptions {
                full_scale: false,
                ufs_hole_opt: true,
                ..WorldOptions::default()
            },
        )
        .await
        .unwrap();
        // A dense file: created in-session, never truncated/hole-punched.
        let f = w.fs.create("dense").await.unwrap();
        f.write(0, &pattern(512 * 1024, 2), AccessMode::Copy)
            .await
            .unwrap();
        // Read twice: the second pass is all cache hits and should skip
        // every bmap.
        f.read(0, 512 * 1024, AccessMode::Copy).await.unwrap();
        w.fs.reset_stats();
        f.read(0, 512 * 1024, AccessMode::Copy).await.unwrap();
        let st = w.fs.stats();
        assert!(
            st.bmap_skipped_hole_opt >= 60,
            "dense cached file should skip bmaps, skipped {}",
            st.bmap_skipped_hole_opt
        );

        // A holey file must NOT skip.
        let h = w.fs.create("holey").await.unwrap();
        h.write(0, &pattern(8192, 3), AccessMode::Copy)
            .await
            .unwrap();
        h.write(128 * 1024, &pattern(8192, 4), AccessMode::Copy)
            .await
            .unwrap();
        h.read(0, 140 * 1024, AccessMode::Copy).await.unwrap();
        w.fs.reset_stats();
        h.read(0, 140 * 1024, AccessMode::Copy).await.unwrap();
        assert_eq!(
            w.fs.stats().bmap_skipped_hole_opt,
            0,
            "files with holes must keep calling bmap"
        );
    });
}

#[test]
fn random_cluster_hint_reduces_io_count() {
    // "If the request is a read of a large amount of data, it is possible
    // that the request size could be passed down to the ufs_getpage
    // routine ... to turn on clustering for what is apparently random
    // access."
    let ios = |hint: bool| -> u64 {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let w = paper_world(
                &s,
                Tuning::config_a(),
                WorldOptions {
                    full_scale: false,
                    random_cluster_hint: hint,
                    ..WorldOptions::default()
                },
            )
            .await
            .unwrap();
            let f = w.fs.create("f").await.unwrap();
            f.write(0, &pattern(2 << 20, 5), AccessMode::Copy)
                .await
                .unwrap();
            f.fsync().await.unwrap();
            w.cache.invalidate_vnode(f.id(), 0);
            w.disk.reset_stats();
            // Random 40 KB reads (the paper's "random reads of 20KB
            // segments" scenario, scaled to our block size).
            for i in [20u64, 3, 11, 27, 7, 17, 24, 1] {
                f.read(i * 40960, 40960, AccessMode::Copy).await.unwrap();
            }
            w.disk.stats().reads
        })
    };
    let without = ios(false);
    let with = ios(true);
    assert!(
        with < without / 2,
        "size hint should cut I/O count: {with} vs {without}"
    );
}

#[test]
fn b_order_speeds_up_rm_star() {
    // "If there was a way to insure the order of critical writes ... The
    // performance of commands like rm * would improve substantially."
    let rm_star = |ordered: bool| -> (f64, u64) {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let w = paper_world(
                &s,
                Tuning::config_a(),
                WorldOptions {
                    full_scale: false,
                    ordered_metadata: ordered,
                    ..WorldOptions::default()
                },
            )
            .await
            .unwrap();
            for i in 0..30 {
                let f = w.fs.create(&format!("f{i}")).await.unwrap();
                f.write(0, &pattern(4096, i as u8), AccessMode::Copy)
                    .await
                    .unwrap();
            }
            w.fs.sync().await.unwrap();
            let t0 = s.now();
            for i in 0..30 {
                w.fs.remove(&format!("f{i}")).await.unwrap();
            }
            let elapsed = s.now().duration_since(t0).as_secs_f64();
            let ordered_writes = w.fs.stats().ordered_meta_writes;
            // The image must still be consistent after settling.
            w.fs.clone().unmount().await.unwrap();
            let report = ufs::fsck(&*w.disk).await.unwrap();
            assert!(report.is_clean(), "{:?}", report.errors);
            (elapsed, ordered_writes)
        })
    };
    let (sync_time, sync_ordered) = rm_star(false);
    let (ordered_time, ordered_count) = rm_star(true);
    assert_eq!(sync_ordered, 0);
    assert!(ordered_count > 0, "B_ORDER mode issues ordered writes");
    assert!(
        ordered_time < sync_time * 0.5,
        "rm * should improve substantially: {ordered_time:.3}s vs {sync_time:.3}s"
    );
}

#[test]
fn inline_files_served_from_inode_cache() {
    // "Data in the inode": small files use no data blocks and survive
    // remount.
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let cpu = simkit::Cpu::new(&s);
        let disk: diskmodel::SharedDevice = std::rc::Rc::new(diskmodel::Disk::new(
            &s,
            diskmodel::DiskParams::small_test(),
        ));
        let cache = pagecache::PageCache::new(&s, pagecache::PageCacheParams::small_test());
        ufs::mkfs(&s, &*disk, ufs::MkfsOptions::small_test())
            .await
            .unwrap();
        let mut params = ufs::UfsParams::test(Tuning::config_a());
        params.inline_small = true;
        let fs = ufs::Ufs::mount(&s, &cpu, &cache, &disk, params.clone(), None)
            .await
            .unwrap();
        let free0 = fs.free_blocks();
        let f = fs.create("tiny").await.unwrap();
        f.write(0, b"inline me", AccessMode::Copy).await.unwrap();
        f.fsync().await.unwrap();
        assert_eq!(fs.free_blocks(), free0, "no data blocks consumed");
        fs.clone().unmount().await.unwrap();
        // Remount: the inline content persisted inside the dinode.
        params.mount_id = 9;
        let fs2 = ufs::Ufs::mount(&s, &cpu, &cache, &disk, params, None)
            .await
            .unwrap();
        let f2 = fs2.open("tiny").await.unwrap();
        let back = f2.read(0, 100, AccessMode::Copy).await.unwrap();
        assert_eq!(back, b"inline me");
    });
}
