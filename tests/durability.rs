//! Crash-consistency and durability integration tests: what survives an
//! unclean stop, and what fsck says about it.

use clufs::Tuning;
use iobench::{paper_world, WorldOptions};
use simkit::Sim;
use vfs::{AccessMode, FileSystem, Vnode};

fn small() -> WorldOptions {
    WorldOptions {
        full_scale: false,
        ..WorldOptions::default()
    }
}

#[test]
fn fsynced_data_survives_crash_and_remount() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = paper_world(&s, Tuning::config_a(), small()).await.unwrap();
        let f = w.fs.create("durable").await.unwrap();
        let data: Vec<u8> = (0..100_000).map(|i| (i % 241) as u8).collect();
        f.write(0, &data, AccessMode::Copy).await.unwrap();
        f.fsync().await.unwrap();
        // CRASH: drop all in-core state; only the disk survives. (The
        // in-core bitmaps were never synced, so fsck will complain — but
        // the *data* must be there, because fsync completed.)
        let cpu = simkit::Cpu::new(&s);
        let cache = pagecache::PageCache::new(&s, pagecache::PageCacheParams::small_test());
        let mut params = ufs::UfsParams::test(Tuning::config_a());
        params.mount_id = 77;
        let fs2 = ufs::Ufs::mount(&s, &cpu, &cache, &w.disk, params, None)
            .await
            .unwrap();
        let f2 = fs2.open("durable").await.unwrap();
        assert_eq!(f2.size(), 100_000);
        let back = f2.read(0, 100_000, AccessMode::Copy).await.unwrap();
        assert_eq!(back, data);
    });
}

#[test]
fn unsynced_data_is_lost_but_detected() {
    let sim = Sim::new();
    let s = sim.clone();
    let (report, found) = sim.run_until(async move {
        let w = paper_world(&s, Tuning::config_a(), small()).await.unwrap();
        let f = w.fs.create("volatile").await.unwrap();
        // Delayed writes: never fsynced, likely still accumulating in the
        // delayed-write engine or in flight.
        f.write(0, &[5u8; 20_000], AccessMode::Copy).await.unwrap();
        // Crash immediately.
        let report = ufs::fsck(&*w.disk).await.unwrap();
        // Remount: the file NAME is durable (directory updates are
        // synchronous in classic UFS), even though the data may not be.
        let cpu = simkit::Cpu::new(&s);
        let cache = pagecache::PageCache::new(&s, pagecache::PageCacheParams::small_test());
        let mut params = ufs::UfsParams::test(Tuning::config_a());
        params.mount_id = 78;
        let fs2 = ufs::Ufs::mount(&s, &cpu, &cache, &w.disk, params, None)
            .await
            .unwrap();
        let found = fs2.open("volatile").await.is_ok();
        (report, found)
    });
    assert!(!report.was_clean, "crash leaves the dirty flag");
    assert!(found, "sync directory update made the name durable");
}

#[test]
fn sync_makes_whole_tree_consistent() {
    let sim = Sim::new();
    let s = sim.clone();
    let report = sim.run_until(async move {
        let w = paper_world(&s, Tuning::config_a(), small()).await.unwrap();
        w.fs.mkdir("a").await.unwrap();
        w.fs.mkdir("a/b").await.unwrap();
        for i in 0..10 {
            let f = w.fs.create(&format!("a/b/f{i}")).await.unwrap();
            f.write(0, &vec![i as u8; 9_000], AccessMode::Copy)
                .await
                .unwrap();
        }
        w.fs.remove("a/b/f3").await.unwrap();
        // sync (not unmount): everything except the clean flag reaches
        // disk; fsck must find zero structural errors.
        w.fs.sync().await.unwrap();
        w.fs.flush_maps(false).await;
        ufs::fsck(&*w.disk).await.unwrap()
    });
    assert!(report.is_clean(), "errors: {:?}", report.errors);
    assert_eq!(report.files, 9);
    assert_eq!(report.dirs, 3);
}

#[test]
fn ordered_metadata_is_crash_consistent_when_settled() {
    // B_ORDER mode: metadata writes are asynchronous but ordered. Once the
    // queue drains, the image must be exactly as consistent as sync mode.
    let sim = Sim::new();
    let s = sim.clone();
    let report = sim.run_until(async move {
        let w = paper_world(
            &s,
            Tuning::config_a(),
            WorldOptions {
                full_scale: false,
                ordered_metadata: true,
                ..WorldOptions::default()
            },
        )
        .await
        .unwrap();
        for i in 0..20 {
            let f = w.fs.create(&format!("f{i}")).await.unwrap();
            f.write(0, &[i as u8; 5000], AccessMode::Copy)
                .await
                .unwrap();
        }
        for i in (0..20).step_by(3) {
            w.fs.remove(&format!("f{i}")).await.unwrap();
        }
        w.fs.clone().unmount().await.unwrap();
        ufs::fsck(&*w.disk).await.unwrap()
    });
    assert!(report.is_clean(), "errors: {:?}", report.errors);
    assert_eq!(report.files, 13);
}

#[test]
fn data_written_under_memory_pressure_is_intact() {
    // Write far more than memory, fsync, remount, verify every byte: the
    // pageout/cleaner path must never lose or corrupt a page.
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = paper_world(&s, Tuning::config_a(), small()).await.unwrap();
        // Small world: 32 pages = 256 KB of memory; write 2 MB.
        let f = w.fs.create("pressure").await.unwrap();
        let chunk: Vec<u8> = (0..64 * 1024).map(|i| (i % 239) as u8).collect();
        for i in 0..32u64 {
            f.write(i * chunk.len() as u64, &chunk, AccessMode::Copy)
                .await
                .unwrap();
        }
        f.fsync().await.unwrap();
        w.cache.invalidate_vnode(f.id(), 0);
        for i in [0u64, 7, 15, 31] {
            let back = f
                .read(i * chunk.len() as u64, chunk.len(), AccessMode::Copy)
                .await
                .unwrap();
            assert_eq!(back, chunk, "chunk {i} corrupt");
        }
        w.cache.assert_consistent();
    });
}
