//! Integration tests asserting the paper's headline claims at reduced
//! scale. These are the "shape" checks: who wins, by roughly what factor,
//! where the tradeoffs fall.

use clufs::Tuning;
use iobench::iobench::BenchOptions;
use iobench::{paper_world, run_iobench, Config, IoKind, WorldOptions};
use simkit::Sim;
use vfs::Vnode;

fn opts() -> BenchOptions {
    BenchOptions {
        file_bytes: 4 << 20,
        io_bytes: 8192,
        random_ops: 256,
        seed: 0x1991,
    }
}

fn rate(config: Config, kind: IoKind) -> f64 {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = paper_world(&s, config.tuning(), WorldOptions::default())
            .await
            .unwrap();
        let cache = w.cache.clone();
        run_iobench(
            &s,
            &w.fs,
            move |f: &ufs::UfsFile| cache.invalidate_vnode(f.id(), 0),
            "t",
            kind,
            opts(),
        )
        .await
        .unwrap()
        .kb_per_sec()
    })
}

#[test]
fn sequential_read_improves_by_about_2x() {
    // "Predictably, the sequential I/O rates improved about a factor of
    // two."
    let a = rate(Config::A, IoKind::SeqRead);
    let d = rate(Config::D, IoKind::SeqRead);
    let ratio = a / d;
    assert!(
        (1.6..2.4).contains(&ratio),
        "A/D sequential read ratio {ratio:.2} (A={a:.0}, D={d:.0})"
    );
}

#[test]
fn sequential_writes_improve_similarly() {
    let a = rate(Config::A, IoKind::SeqWrite);
    let d = rate(Config::D, IoKind::SeqWrite);
    let ratio = a / d;
    assert!(
        (1.4..2.2).contains(&ratio),
        "A/D sequential write ratio {ratio:.2} (A={a:.0}, D={d:.0})"
    );
}

#[test]
fn random_reads_are_unaffected() {
    // Figure 11: FRR ratios ≈ 1.04.
    let a = rate(Config::A, IoKind::RandRead);
    let d = rate(Config::D, IoKind::RandRead);
    let ratio = a / d;
    assert!(
        (0.85..1.2).contains(&ratio),
        "A/D random read ratio {ratio:.2}"
    );
}

#[test]
fn unlimited_writes_win_random_update_via_disksort() {
    // "The random update (or write) numbers went down when compared to the
    // generic 4.1 UFS. We made a tradeoff between performance and fairness
    // in favor of fairness." (Figure 11: A/D FRU = 0.83.)
    let a = rate(Config::A, IoKind::RandUpdate);
    let d = rate(Config::D, IoKind::RandUpdate);
    assert!(
        d > a,
        "no write limit should win FRU: A={a:.0} vs D={d:.0} KB/s"
    );
}

#[test]
fn tuning_only_destroys_write_performance() {
    // "Given that writes will degrade and only some reads will improve, we
    // rejected this approach."
    let run = |tuning: Tuning, kind: IoKind| -> f64 {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let wo = WorldOptions {
                full_scale: true,
                ..Default::default()
            };
            let w = paper_world(&s, tuning, wo).await.unwrap();
            let cache = w.cache.clone();
            run_iobench(
                &s,
                &w.fs,
                move |f: &ufs::UfsFile| cache.invalidate_vnode(f.id(), 0),
                "t",
                kind,
                opts(),
            )
            .await
            .unwrap()
            .kb_per_sec()
        })
    };
    let b_write = run(Tuning::config_b(), IoKind::SeqWrite);
    let tuned_write = run(Tuning::tuning_only(), IoKind::SeqWrite);
    let tuned_read = run(Tuning::tuning_only(), IoKind::SeqRead);
    let b_read = run(Tuning::config_b(), IoKind::SeqRead);
    assert!(
        tuned_write < b_write * 0.7,
        "rotdelay=0 without clustering must hurt writes: {tuned_write:.0} vs {b_write:.0}"
    );
    assert!(
        tuned_read >= b_read * 0.95,
        "rotdelay=0 should not hurt reads (track buffer): {tuned_read:.0} vs {b_read:.0}"
    );
}

#[test]
fn clustered_ufs_matches_extent_fs() {
    // The title claim: extent-like performance without the format change.
    let sim = Sim::new();
    let s = sim.clone();
    let ext = sim.run_until(async move {
        let cpu = simkit::Cpu::new(&s);
        let disk: diskmodel::SharedDevice =
            std::rc::Rc::new(diskmodel::Disk::new(&s, diskmodel::DiskParams::sun0424()));
        let cache = pagecache::PageCache::new(&s, pagecache::PageCacheParams::sparcstation_8mb());
        let (_d, rx) = pagecache::PageoutDaemon::spawn(
            &s,
            &cache,
            Some(cpu.clone()),
            pagecache::PageoutParams::sparcstation(),
        );
        std::mem::forget(rx);
        let fs = extentfs::ExtentFs::format(
            &s,
            &cpu,
            &cache,
            &disk,
            64,
            extentfs::ExtentFsParams::with_extent_blocks(15),
        )
        .unwrap();
        let cache2 = cache.clone();
        run_iobench(
            &s,
            &fs,
            move |f: &extentfs::ExtFile| cache2.invalidate_vnode(f.id(), 0),
            "t",
            IoKind::SeqRead,
            opts(),
        )
        .await
        .unwrap()
        .kb_per_sec()
    });
    let ufs_rate = rate(Config::A, IoKind::SeqRead);
    let ratio = ufs_rate / ext;
    assert!(
        (0.85..1.15).contains(&ratio),
        "clustered UFS ({ufs_rate:.0}) should match extentfs@120KB ({ext:.0})"
    );
}

#[test]
fn clustering_reduces_cpu_per_byte() {
    // Figure 12: "The new UFS is approximately 25% more efficient in terms
    // of CPU cycles."
    let (_, new, old) = iobench::experiments::fig12_run(
        iobench::experiments::RunScale::quick(),
        &iobench::runner::Runner::serial(None),
    );
    assert!(
        old > new * 1.15,
        "clustered mmap read should use noticeably less CPU: new={new:.2}s old={old:.2}s"
    );
    assert!(
        old < new * 2.5,
        "CPU saving should not be wildly larger than the paper's: new={new:.2}s old={old:.2}s"
    );
}

#[test]
fn write_limit_prevents_memory_lockdown() {
    // "There is nothing to prevent a single process from dirtying every
    // page" — the limit bounds page-allocation stalls.
    let stalls = |limit: Option<u32>| -> u64 {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let tuning = Tuning {
                write_limit: limit,
                ..Tuning::config_a()
            };
            let w = paper_world(&s, tuning, WorldOptions::default())
                .await
                .unwrap();
            let cache = w.cache.clone();
            // A fast sequential writer dirties memory at CPU speed
            // (~3 MB/s) while the disk drains at ~1.4 MB/s: without the
            // limit it locks down every page.
            run_iobench(
                &s,
                &w.fs,
                move |f: &ufs::UfsFile| cache.invalidate_vnode(f.id(), 0),
                "t",
                IoKind::SeqWrite,
                BenchOptions {
                    file_bytes: 12 << 20,
                    io_bytes: 65536,
                    random_ops: 1,
                    seed: 3,
                },
            )
            .await
            .unwrap();
            w.cache.stats().alloc_stalls
        })
    };
    let without = stalls(None);
    let with = stalls(Some(240 * 1024));
    assert!(
        without > with,
        "no limit must cause more allocation stalls: {without} vs {with}"
    );
    assert_eq!(with, 0, "the 240KB limit should eliminate stalls here");
}

#[test]
fn musbus_barely_improves() {
    // "The time-sharing benchmarks improved only slightly."
    let (_, ratio) = iobench::experiments::musbus_run(&iobench::runner::Runner::serial(None));
    assert!(
        (0.9..1.25).contains(&ratio),
        "timesharing old/new ratio {ratio:.2} should be near 1"
    );
}

#[test]
fn fresh_allocation_is_megabyte_contiguous() {
    // In-text: "the average extent size was 1.5MB in a 13MB file."
    let sim = Sim::new();
    let s = sim.clone();
    let stats = sim.run_until(async move {
        let w = paper_world(&s, Tuning::config_a(), WorldOptions::default())
            .await
            .unwrap();
        iobench::aging::probe_extents(&w, "probe", 13 << 20)
            .await
            .unwrap()
    });
    assert!(
        stats.mean_extent_bytes > 1.0 * 1024.0 * 1024.0,
        "fresh-fs mean extent {:.0} KB should be megabytes",
        stats.mean_extent_bytes / 1024.0
    );
}
