#!/bin/sh
# Wall-clock benchmark suite + parallel-determinism check.
#
#   scripts/bench.sh [--smoke] [--out PATH]
#
# 1. Verifies the `--jobs` contract: `iobench fig10 --quick` must emit
#    byte-identical stdout, --stats-json, and --trace output at jobs=1
#    and jobs=4.
# 2. Runs the wallclock bench (crates/bench/benches/wallclock.rs) and
#    writes BENCH_iobench.json (schema iobench-bench/v1; see DESIGN.md
#    "Wall-clock performance").
#
# --smoke shrinks the workloads for CI.
set -eu

cd "$(dirname "$0")/.."

MODE=full
OUT="$PWD/BENCH_iobench.json"
while [ $# -gt 0 ]; do
    case "$1" in
        --smoke) MODE=smoke ;;
        --out)
            shift
            [ $# -gt 0 ] || { echo "--out requires a path" >&2; exit 2; }
            OUT=$1
            ;;
        *)
            echo "usage: scripts/bench.sh [--smoke] [--out PATH]" >&2
            exit 2
            ;;
    esac
    shift
done

cargo build --release -p iobench

# Determinism: --jobs must change only wall-clock time, never a byte of
# output.
BIN=target/release/iobench
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
"$BIN" fig10 --quick --jobs 1 --stats-json "$TMP/s1.json" --trace "$TMP/t1.json" >"$TMP/out1.txt"
"$BIN" fig10 --quick --jobs 4 --stats-json "$TMP/s4.json" --trace "$TMP/t4.json" >"$TMP/out4.txt"
cmp "$TMP/out1.txt" "$TMP/out4.txt"
cmp "$TMP/s1.json" "$TMP/s4.json"
cmp "$TMP/t1.json" "$TMP/t4.json"
echo "jobs=1 vs jobs=4: stdout, stats JSON, and trace are byte-identical"

# Same contract for the RAID volume experiment (fan-out across spindles
# must not leak scheduling nondeterminism into any output surface).
"$BIN" volume --volume raid5:3:32k --quick --jobs 1 \
    --stats-json "$TMP/v1.json" --trace "$TMP/vt1.json" >"$TMP/vout1.txt"
"$BIN" volume --volume raid5:3:32k --quick --jobs 4 \
    --stats-json "$TMP/v4.json" --trace "$TMP/vt4.json" >"$TMP/vout4.txt"
cmp "$TMP/vout1.txt" "$TMP/vout4.txt"
cmp "$TMP/v1.json" "$TMP/v4.json"
cmp "$TMP/vt1.json" "$TMP/vt4.json"
grep -q 'disk.busy_ns{spindle=' "$TMP/v1.json"
echo "volume jobs=1 vs jobs=4: stdout, stats JSON, and trace are byte-identical"

# Same contract for the aging study (two virtual worlds churned on
# separate workers must still re-emit deterministically in plan order).
"$BIN" aging --quick --jobs 1 --stats-json "$TMP/a1.json" >"$TMP/aout1.txt"
"$BIN" aging --quick --jobs 4 --stats-json "$TMP/a4.json" >"$TMP/aout4.txt"
cmp "$TMP/aout1.txt" "$TMP/aout4.txt"
cmp "$TMP/a1.json" "$TMP/a4.json"
grep -q '"id":"aging/extentfs"' "$TMP/a1.json"
echo "aging jobs=1 vs jobs=4: stdout and stats JSON are byte-identical"

if [ "$MODE" = smoke ]; then
    cargo bench -p bench --bench wallclock -- --smoke --out "$OUT"
else
    cargo bench -p bench --bench wallclock -- --out "$OUT"
fi
