#!/bin/sh
# Wall-clock benchmark suite + parallel-determinism check.
#
#   scripts/bench.sh [--smoke] [--out PATH]
#
# 1. Verifies the `--jobs` contract: `iobench fig10 --quick` must emit
#    byte-identical stdout, --stats-json, --trace, and --timeline output
#    at jobs=1 and jobs=4 — with the host profiler (--perf) armed, which
#    must observe without perturbing.
# 2. Runs the wallclock bench (crates/bench/benches/wallclock.rs) and
#    writes BENCH_iobench.json (schema iobench-bench/v3; see DESIGN.md
#    "Wall-clock performance"), attaching the host profile
#    (BENCH_iobench.perf.json) so a bad parallel speedup arrives with
#    per-worker utilization to diagnose it. A speedup below 1.0x sets
#    the document's "attention" marker and prints a loud warning — the
#    benchmark still exits 0 (slow is a finding, not a failure).
#
# --smoke shrinks the workloads for CI.
set -eu

cd "$(dirname "$0")/.."

MODE=full
OUT="$PWD/BENCH_iobench.json"
while [ $# -gt 0 ]; do
    case "$1" in
        --smoke) MODE=smoke ;;
        --out)
            shift
            [ $# -gt 0 ] || { echo "--out requires a path" >&2; exit 2; }
            OUT=$1
            ;;
        *)
            echo "usage: scripts/bench.sh [--smoke] [--out PATH]" >&2
            exit 2
            ;;
    esac
    shift
done

cargo build --release -p iobench

# Determinism: --jobs must change only wall-clock time, never a byte of
# output.
BIN=target/release/iobench
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
"$BIN" fig10 --quick --jobs 1 --stats-json "$TMP/s1.json" --trace "$TMP/t1.json" \
    --timeline "$TMP/l1.json" >"$TMP/out1.txt"
# The jobs=4 leg also arms the host profiler: profiling must not move a
# byte of any virtual-time output surface.
"$BIN" fig10 --quick --jobs 4 --stats-json "$TMP/s4.json" --trace "$TMP/t4.json" \
    --timeline "$TMP/l4.json" --perf "$TMP/perf.json" >"$TMP/out4.txt" 2>"$TMP/perf.txt"
cmp "$TMP/out1.txt" "$TMP/out4.txt"
cmp "$TMP/s1.json" "$TMP/s4.json"
cmp "$TMP/t1.json" "$TMP/t4.json"
cmp "$TMP/l1.json" "$TMP/l4.json"
grep -q '"schema":"iobench-timeline/v1"' "$TMP/l1.json"
grep -q '"schema":"iobench-perf/v1"' "$TMP/perf.json"
echo "jobs=1 vs jobs=4 (profiled): stdout, stats, trace, and timeline are byte-identical"

# Same contract for the RAID volume experiment (fan-out across spindles
# must not leak scheduling nondeterminism into any output surface).
"$BIN" volume --volume raid5:3:32k --quick --jobs 1 \
    --stats-json "$TMP/v1.json" --trace "$TMP/vt1.json" >"$TMP/vout1.txt"
"$BIN" volume --volume raid5:3:32k --quick --jobs 4 \
    --stats-json "$TMP/v4.json" --trace "$TMP/vt4.json" >"$TMP/vout4.txt"
cmp "$TMP/vout1.txt" "$TMP/vout4.txt"
cmp "$TMP/v1.json" "$TMP/v4.json"
cmp "$TMP/vt1.json" "$TMP/vt4.json"
grep -q 'disk.busy_ns{spindle=' "$TMP/v1.json"
echo "volume jobs=1 vs jobs=4: stdout, stats JSON, and trace are byte-identical"

# Same contract for the fault-injection experiment (injected faults,
# degraded service, and the online rebuild are all seeded virtual-time
# events; a custom plan must replay byte-identically too).
"$BIN" faults --quick --jobs 1 --stats-json "$TMP/f1.json" >"$TMP/fout1.txt"
"$BIN" faults --quick --jobs 4 --stats-json "$TMP/f4.json" >"$TMP/fout4.txt"
cmp "$TMP/fout1.txt" "$TMP/fout4.txt"
cmp "$TMP/f1.json" "$TMP/f4.json"
grep -q 'fault.injected' "$TMP/f1.json"
"$BIN" --faults 'seed=7,transient=0:100+64x2,die=1@2s' --volume raid5:4:16k \
    --quick --jobs 1 >"$TMP/fpout1.txt"
"$BIN" --faults 'seed=7,transient=0:100+64x2,die=1@2s' --volume raid5:4:16k \
    --quick --jobs 4 >"$TMP/fpout4.txt"
cmp "$TMP/fpout1.txt" "$TMP/fpout4.txt"
echo "faults jobs=1 vs jobs=4: stdout and stats JSON are byte-identical"

# Same contract for the aging study (two virtual worlds churned on
# separate workers must still re-emit deterministically in plan order).
"$BIN" aging --quick --jobs 1 --stats-json "$TMP/a1.json" >"$TMP/aout1.txt"
"$BIN" aging --quick --jobs 4 --stats-json "$TMP/a4.json" >"$TMP/aout4.txt"
cmp "$TMP/aout1.txt" "$TMP/aout4.txt"
cmp "$TMP/a1.json" "$TMP/a4.json"
grep -q '"id":"aging/extentfs"' "$TMP/a1.json"
echo "aging jobs=1 vs jobs=4: stdout and stats JSON are byte-identical"

# Same contract for the adaptive-readahead sweep (30 runs across two file
# systems and three prefetch policies; the prefetch counters in the stats
# document are part of the byte-identity surface).
"$BIN" readahead --quick --jobs 1 --stats-json "$TMP/r1.json" >"$TMP/rout1.txt"
"$BIN" readahead --quick --jobs 4 --stats-json "$TMP/r4.json" >"$TMP/rout4.txt"
cmp "$TMP/rout1.txt" "$TMP/rout4.txt"
cmp "$TMP/r1.json" "$TMP/r4.json"
grep -q 'io.prefetch_issued' "$TMP/r1.json"
grep -q '"id":"readahead/ufs-A/adaptive/s256/r8"' "$TMP/r1.json"
echo "readahead jobs=1 vs jobs=4: stdout and stats JSON are byte-identical"

if [ "$MODE" = smoke ]; then
    cargo bench -p bench --bench wallclock -- --smoke --out "$OUT"
else
    cargo bench -p bench --bench wallclock -- --out "$OUT"
fi

# Attach a host profile of the same parallel workload the bench timed, so
# the report names where the wall-clock went (per-worker utilization, top
# phase sinks). Diagnostic only: not part of the byte-identity surface.
PERF_OUT="${OUT%.json}.perf.json"
"$BIN" fig10 --quick --perf "$PERF_OUT" >/dev/null
echo "wrote host profile to $PERF_OUT"

# A parallel "speedup" below 1.0x means the fan-out made things slower;
# the bench marks the document (attention != 0) and we shout about it
# here, pointing at the profile that explains it.
if grep -q '"attention":0' "$OUT"; then
    echo "parallel speedup OK (attention marker clear)"
else
    echo "" >&2
    echo "##################################################################" >&2
    echo "# ATTENTION: parallel fig10 ran SLOWER than serial on this host. #" >&2
    echo "# See \"parallel\" (speedup, per-worker utilization) in:          #" >&2
    echo "#   $OUT" >&2
    echo "# and the host profile (top wall-clock sinks) in:                #" >&2
    echo "#   $PERF_OUT" >&2
    echo "##################################################################" >&2
fi
