#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
#
#   build (release)  +  full test suite  +  formatting  +  clippy clean
#
# Run from anywhere; operates on the repo root.
set -eux

cd "$(dirname "$0")/.."

cargo build --release --workspace --all-targets
cargo test --workspace -q
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
