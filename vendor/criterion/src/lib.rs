//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates registry (see `vendor/README.md`),
//! so this minimal shim keeps `cargo bench` working: it compiles the
//! same bench sources and reports a crude mean wall-clock time per
//! iteration instead of criterion's full statistical analysis. Sample
//! counts and warm-up/measurement windows are honoured approximately.

use std::time::{Duration, Instant};

/// Defeats constant-folding the same way criterion's `black_box` does.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            deadline: Instant::now() + self.warm_up_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b); // Warm-up pass; measurements discarded.
        let per_sample = self.measurement_time / self.sample_size.max(1) as u32;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                deadline: Instant::now() + per_sample,
                iters: 0,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        let mean = if iters > 0 {
            total / iters as u32
        } else {
            Duration::ZERO
        };
        println!("{}/{}: mean {:?} over {} iters", self.name, id, mean, iters);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    deadline: Instant,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly until this sample's time budget is spent
    /// (always at least once).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
