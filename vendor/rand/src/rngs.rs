//! Named generators. Only `SmallRng` exists here.

use crate::{RngCore, SeedableRng};

/// Deterministic non-cryptographic generator (splitmix64).
///
/// Small state, fast, and passes the statistical bar a file-system
/// workload shuffler needs. The sequence differs from upstream rand's
/// `SmallRng` (xoshiro); nothing in this workspace depends on the exact
/// stream, only on its determinism for a given seed.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> SmallRng {
        SmallRng { state }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
