//! Sequence utilities: slice shuffling.

use crate::Rng;

pub trait SliceRandom {
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
