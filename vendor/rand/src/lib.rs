//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to a crates
//! registry, so the few external dependencies are vendored as minimal
//! API-compatible stubs (see `vendor/README.md`). This crate implements
//! exactly the subset the workspace uses: `SmallRng` seeded via
//! `seed_from_u64`, integer/float `gen_range`, `gen_bool`, and slice
//! `shuffle`. The generator is deterministic (splitmix64), which the
//! simulation's reproducibility guarantees rely on; it makes no attempt
//! to match upstream `rand`'s output streams.

pub mod rngs;
pub mod seq;

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open range a value can be drawn from.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo draw: biased for spans near 2^64, which is far
                // outside anything this workspace samples.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every core
/// generator.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
