//! Boolean strategies (`prop::bool::weighted`).

use crate::strategy::Strategy;
use crate::TestRng;

/// `true` with probability `p`.
pub struct Weighted {
    p: f64,
}

pub fn weighted(p: f64) -> Weighted {
    assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
    Weighted { p }
}

impl Strategy for Weighted {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.unit_f64() < self.p
    }
}
