//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates registry, so external dependencies
//! are vendored as minimal API-compatible stubs (see `vendor/README.md`).
//! This implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, integer-range and tuple
//! strategies, [`Just`], `any::<T>()`, `prop_oneof!`, weighted booleans,
//! `collection::vec`, and the `proptest!` macro with an optional
//! `proptest_config` attribute.
//!
//! Differences from real proptest, deliberate for a stub:
//! - **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message (each `proptest!` body runs under
//!   `#[track_caller]`-less plain asserts), but is not minimized.
//! - **Fixed seeding.** Case `i` of test `t` uses a seed derived from
//!   `(t, i)`, so every run explores the same inputs. This keeps CI and
//!   the simulation's determinism tests stable.
//! - `proptest-regressions` files are ignored.

use std::fmt::Debug;

pub mod bool;
pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration. Only `cases` is honoured; `max_shrink_iters`
/// exists so callers can use the real crate's struct-update idiom
/// (`ProptestConfig { cases, ..Default::default() }`) without the update
/// being a no-op (this stub never shrinks).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each `#[test]` inside `proptest!` runs.
    pub cases: u32,
    /// Accepted for source compatibility; ignored.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Everything a property test file conventionally glob-imports.
pub mod prelude {
    /// `prop::bool::weighted(..)`, `prop::collection::vec(..)`, …
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestRng};
}

/// Stable per-test seed: FNV-1a over the test name.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr)
     $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let base = $crate::seed_for(stringify!($name));
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::new(base.wrapping_add(case));
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    // Real proptest bodies may `return Ok(())` early; run
                    // the body in a closure with that signature.
                    #[allow(clippy::redundant_closure_call)]
                    let result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("property {} failed: {}", stringify!($name), e);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies producing the same value type.
/// Weighted arms (`3 => strat`) are not supported by this stub.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_oneof_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        let strat = (0u8..4, 10u32..20).prop_map(|(a, b)| (a, b));
        for _ in 0..200 {
            let (a, b) = strat.new_value(&mut rng);
            assert!(a < 4 && (10..20).contains(&b));
        }
        let choice = prop_oneof![Just(1u8), Just(2u8), 5u8..7];
        for _ in 0..200 {
            let v = choice.new_value(&mut rng);
            assert!([1, 2, 5, 6].contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: patterns bind, asserts run.
        #[test]
        fn macro_smoke(v in prop::collection::vec(any::<u8>(), 1..10), flip in any::<bool>()) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert_eq!(flip, flip);
        }
    }
}
