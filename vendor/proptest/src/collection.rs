//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A vector whose length is drawn from `len` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}
