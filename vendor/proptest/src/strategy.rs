//! The `Strategy` trait and the concrete strategies the workspace uses.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::TestRng;

/// A recipe for generating values. Unlike real proptest there is no value
/// tree and no shrinking: a strategy is just a deterministic function of
/// the RNG state.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
    }
}

/// Type-erased strategy; what `prop_oneof!` arms become.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed alternatives.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
