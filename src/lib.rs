//! # ufs-clustering-repro
//!
//! Reproduction of L. W. McVoy & S. R. Kleiman, *Extent-like Performance
//! from a UNIX File System* (USENIX Winter 1991): SunOS UFS I/O clustering,
//! rebuilt as a deterministic user-space simulation. See the workspace
//! crates for the pieces:
//!
//! - [`simkit`] — virtual-time async executor
//! - [`diskmodel`] — rotating-disk simulator with a track buffer
//! - [`pagecache`] — unified VM page cache + pageout daemon
//! - [`vfs`] — the vnode interface
//! - [`ufs`] — the file system (old and new I/O paths)
//! - [`clufs`] — the clustering policy engines (the paper's contribution)
//! - [`extentfs`] — the extent-based comparator
//! - [`iobench`] — the paper's evaluation workloads
//!
//! Runnable entry points: the examples in `examples/`, the `iobench` CLI
//! (`cargo run --release -p iobench -- all`), and the `figures` binary
//! (`cargo run --release -p bench --bin figures`).

pub use clufs;
pub use diskmodel;
pub use extentfs;
pub use iobench;
pub use pagecache;
pub use simkit;
pub use ufs;
pub use vfs;
